package replica

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/monitor"
	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/verify"
)

const waitTimeout = 15 * time.Second

func startPrimary(t *testing.T, dir string) (*store.Store, *Server) {
	t.Helper()
	s, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	srv, err := StartServer(ServerConfig{
		Store:          s,
		Addr:           "127.0.0.1:0",
		AdvertiseHTTP:  "http://primary.test",
		HeartbeatEvery: 50 * time.Millisecond,
	})
	if err != nil {
		s.Close()
		t.Fatalf("start server: %v", err)
	}
	return s, srv
}

func startFollower(t *testing.T, dir, primary string) (*store.Store, *Follower) {
	t.Helper()
	s, err := store.OpenFollower(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	f, err := StartFollower(FollowerConfig{
		Store:      s,
		Primary:    primary,
		Dir:        dir,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 200 * time.Millisecond,
	})
	if err != nil {
		s.Close()
		t.Fatalf("start follower: %v", err)
	}
	return s, f
}

func waitCaughtUp(t *testing.T, f *Follower) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), waitTimeout)
	defer cancel()
	if err := f.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("WaitCaughtUp: %v (last err: %s)", err, f.LastError())
	}
}

// waitConverged polls until the follower store reaches the primary's seq.
func waitConverged(t *testing.T, p, f *store.Store) {
	t.Helper()
	target := p.View().Seq
	deadline := time.Now().Add(waitTimeout)
	for f.View().Seq < target {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, primary at %d", f.View().Seq, target)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertEqualState checkpoints both stores and compares the checkpoint files
// byte for byte — bit-identical durable state, not just equal answers.
func assertEqualState(t *testing.T, p *store.Store, pdir string, f *store.Store, fdir string) {
	t.Helper()
	if err := p.Checkpoint(); err != nil {
		t.Fatalf("checkpoint primary: %v", err)
	}
	if err := f.Checkpoint(); err != nil {
		t.Fatalf("checkpoint follower: %v", err)
	}
	pb, err := os.ReadFile(filepath.Join(pdir, "checkpoint.db"))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(fdir, "checkpoint.db"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, fb) {
		t.Fatalf("checkpoint streams differ: primary %d bytes v%d, follower %d bytes v%d",
			len(pb), p.View().Version, len(fb), f.View().Version)
	}
}

func TestFollowerCatchUpAndLiveTail(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p, srv := startPrimary(t, pdir)
	defer p.Close()
	defer srv.Close()

	// History before the follower exists.
	for i := 0; i < 20; i++ {
		if _, err := p.Apply([]store.Op{store.InsertObject(pdf.MustUniform(float64(i), float64(i+1)))}); err != nil {
			t.Fatal(err)
		}
	}

	fs, f := startFollower(t, fdir, srv.Addr())
	defer fs.Close()
	defer f.Close()
	waitCaughtUp(t, f)
	if fs.View().Seq != 20 {
		t.Fatalf("caught-up follower at seq %d", fs.View().Seq)
	}
	if f.PrimaryHTTP() != "http://primary.test" {
		t.Fatalf("PrimaryHTTP = %q", f.PrimaryHTTP())
	}

	// Live tail.
	for i := 0; i < 15; i++ {
		if _, err := p.Apply([]store.Op{store.InsertDisk(geom.Circle{Center: geom.Point{X: float64(i), Y: 1}, Radius: 2})}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, p, fs)
	st := f.Stats()
	if st.RecordsApplied != 35 || st.SnapshotBootstraps != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if lag := f.Lag(); lag.Versions != 0 || lag.Bytes != 0 {
		t.Fatalf("converged follower reports lag %+v", lag)
	}
	assertEqualState(t, p, pdir, fs, fdir)

	// replica.json reflects the follower state.
	rs, ok, err := ReadState(fdir)
	if err != nil || !ok {
		t.Fatalf("ReadState: %v ok=%v", err, ok)
	}
	if rs.Role != "follower" || rs.Source != srv.Addr() || !rs.CaughtUp {
		t.Fatalf("state = %+v", rs)
	}
}

func TestFollowerResumesAcrossItsOwnRestart(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p, srv := startPrimary(t, pdir)
	defer p.Close()
	defer srv.Close()
	for i := 0; i < 10; i++ {
		if _, err := p.Apply([]store.Op{store.InsertObject(pdf.MustUniform(float64(i), float64(i+2)))}); err != nil {
			t.Fatal(err)
		}
	}
	fs, f := startFollower(t, fdir, srv.Addr())
	waitCaughtUp(t, f)
	f.Close()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Primary moves on while the follower is down.
	for i := 0; i < 5; i++ {
		if _, err := p.Apply([]store.Op{store.UpdateObject(uint64(i+1), pdf.MustUniform(100, 101))}); err != nil {
			t.Fatal(err)
		}
	}

	fs2, f2 := startFollower(t, fdir, srv.Addr())
	defer fs2.Close()
	defer f2.Close()
	if fs2.View().Seq != 10 {
		t.Fatalf("restarted follower recovered seq %d from local WAL, want 10", fs2.View().Seq)
	}
	waitCaughtUp(t, f2)
	waitConverged(t, p, fs2)
	if st := f2.Stats(); st.SnapshotBootstraps != 0 {
		t.Fatalf("resume needed a snapshot bootstrap: %+v", st)
	}
	if st := f2.Stats(); st.RecordsApplied != 5 {
		t.Fatalf("resume re-shipped history: applied %d records, want 5", st.RecordsApplied)
	}
	assertEqualState(t, p, pdir, fs2, fdir)
}

func TestFollowerSurvivesPrimaryRestart(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p, srv := startPrimary(t, pdir)
	for i := 0; i < 8; i++ {
		if _, err := p.Apply([]store.Op{store.InsertObject(pdf.MustUniform(float64(i), float64(i+1)))}); err != nil {
			t.Fatal(err)
		}
	}
	fs, f := startFollower(t, fdir, srv.Addr())
	defer fs.Close()
	defer f.Close()
	waitCaughtUp(t, f)

	// Take the primary down (listener and store) and bring it back on the
	// same address.
	addr := srv.Addr()
	srv.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := store.Open(pdir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	srv2, err := StartServer(ServerConfig{Store: p2, Addr: addr, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("restart server on %s: %v", addr, err)
	}
	defer srv2.Close()
	for i := 0; i < 6; i++ {
		if _, err := p2.Apply([]store.Op{store.InsertObject(pdf.MustUniform(200, 201))}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, p2, fs)
	if st := f.Stats(); st.Reconnects == 0 {
		t.Fatalf("follower converged without counting a reconnect: %+v", st)
	}
	assertEqualState(t, p2, pdir, fs, fdir)
}

func TestSnapshotBootstrapFreshFollower(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p, srv := startPrimary(t, pdir)
	defer p.Close()
	defer srv.Close()
	for i := 0; i < 12; i++ {
		if _, err := p.Apply([]store.Op{store.InsertObject(pdf.MustUniform(float64(i), float64(i+3)))}); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint resets the WAL: a fresh follower cannot be served history.
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Apply([]store.Op{store.InsertDisk(geom.Circle{Center: geom.Point{X: 1, Y: 1}, Radius: 1})}); err != nil {
			t.Fatal(err)
		}
	}

	fs, f := startFollower(t, fdir, srv.Addr())
	defer fs.Close()
	defer f.Close()
	waitCaughtUp(t, f)
	waitConverged(t, p, fs)
	if st := f.Stats(); st.SnapshotBootstraps != 1 {
		t.Fatalf("SnapshotBootstraps = %d, want 1", st.SnapshotBootstraps)
	}
	assertEqualState(t, p, pdir, fs, fdir)

	rs, ok, _ := ReadState(fdir)
	if !ok || rs.SnapshotBootstraps != 1 {
		t.Fatalf("replica.json snapshot count = %+v ok=%v", rs, ok)
	}
}

func TestLaggingFollowerRebootstrapsAfterTruncation(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p, srv := startPrimary(t, pdir)
	defer p.Close()
	defer srv.Close()
	for i := 0; i < 6; i++ {
		if _, err := p.Apply([]store.Op{store.InsertObject(pdf.MustUniform(float64(i), float64(i+1)))}); err != nil {
			t.Fatal(err)
		}
	}
	fs, f := startFollower(t, fdir, srv.Addr())
	waitCaughtUp(t, f)
	f.Close()
	fs.Close()

	// While the follower is down, the primary commits more AND checkpoints,
	// truncating the history the follower would need.
	for i := 0; i < 6; i++ {
		if _, err := p.Apply([]store.Op{store.InsertObject(pdf.MustUniform(50, 60))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	fs2, f2 := startFollower(t, fdir, srv.Addr())
	defer fs2.Close()
	defer f2.Close()
	waitCaughtUp(t, f2)
	waitConverged(t, p, fs2)
	if st := f2.Stats(); st.SnapshotBootstraps != 1 {
		t.Fatalf("lagging follower should re-bootstrap via snapshot: %+v", st)
	}
	assertEqualState(t, p, pdir, fs2, fdir)
}

// TestReplicaEquivalenceOracle is the correctness gate: for 50 seeded op
// sequences it captures every MVCC view published on both sides and asserts
// the follower's answer to CPNN/PNN/k-NN queries is byte-identical to the
// primary's at every version — replication preserves not just convergence
// but the entire version history.
func TestReplicaEquivalenceOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("50 seeded runs")
	}
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEquivalenceSeed(t, seed)
		})
	}
}

func runEquivalenceSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	pdir, fdir := t.TempDir(), t.TempDir()
	p, srv := startPrimary(t, pdir)
	defer p.Close()
	defer srv.Close()
	fs, err := store.OpenFollower(fdir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	// BatchMax 1 makes the follower publish a view at every version instead
	// of collapsing bursts, so every primary version can be compared.
	f, err := StartFollower(FollowerConfig{
		Store: fs, Primary: srv.Addr(), Dir: fdir,
		BackoffMin: 10 * time.Millisecond, BatchMax: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Record every view both sides publish.
	psub, err := p.Watch(4096)
	if err != nil {
		t.Fatal(err)
	}
	defer psub.Close()
	fsub, err := fs.Watch(4096)
	if err != nil {
		t.Fatal(err)
	}
	defer fsub.Close()

	const domain = 10000.0
	randIv := func() (float64, float64) {
		lo := rng.Float64() * domain
		return lo, lo + 1 + rng.Float64()*20
	}
	var ops []store.Op
	for i := 0; i < 40; i++ {
		lo, hi := randIv()
		ops = append(ops, store.InsertObject(pdf.MustUniform(lo, hi)))
	}
	res, err := p.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	live := append([]uint64(nil), res.IDs...)

	for step := 0; step < 8; step++ {
		nops := 1 + rng.Intn(4)
		var batch []store.Op
		for i := 0; i < nops; i++ {
			switch op := rng.Intn(10); {
			case op < 4 && len(live) > 0:
				id := live[rng.Intn(len(live))]
				lo, hi := randIv()
				batch = append(batch, store.UpdateObject(id, pdf.MustUniform(lo, hi)))
			case op < 7:
				lo, hi := randIv()
				hist := []float64{lo, lo + (hi-lo)/2, hi}
				batch = append(batch, store.InsertObject(pdf.MustHistogram(hist, []float64{1 + rng.Float64(), 1})))
			case len(live) > 1:
				i := rng.Intn(len(live))
				batch = append(batch, store.Delete(live[i]))
				live = append(live[:i], live[i+1:]...)
			default:
				lo, hi := randIv()
				batch = append(batch, store.InsertObject(pdf.MustUniform(lo, hi)))
			}
		}
		res, err := p.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range batch {
			if op.Code != store.OpDelete && op.ID == 0 {
				live = append(live, res.IDs[i])
			}
		}
	}
	waitConverged(t, p, fs)

	pviews := drainViews(psub)
	fviews := drainViews(fsub)
	specs := make([]monitor.Spec, 0, 9)
	for i := 0; i < 9; i++ {
		q := rng.Float64() * domain
		switch i % 3 {
		case 0:
			specs = append(specs, monitor.Spec{Kind: monitor.KindCPNN, Q: q,
				Constraint: verify.Constraint{P: 0.3, Delta: 0.01}})
		case 1:
			specs = append(specs, monitor.Spec{Kind: monitor.KindPNN, Q: q})
		case 2:
			specs = append(specs, monitor.Spec{Kind: monitor.KindKNN, Q: q,
				Constraint: verify.Constraint{P: 0.4, Delta: 0.05},
				K:          2, Samples: 400, Seed: seed})
		}
	}
	compared := 0
	for ver, fv := range fviews {
		pv, ok := pviews[ver]
		if !ok {
			continue
		}
		for _, sp := range specs {
			want, _, err := monitor.Evaluate(pv, nil, nil, sp)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := monitor.Evaluate(fv, nil, nil, sp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("seed %d version %d: %s q=%g diverges:\nprimary  %s\nfollower %s",
					seed, ver, sp.Kind, sp.Q, want, got)
			}
		}
		compared++
	}
	if compared < 5 {
		t.Fatalf("only %d versions compared — the oracle lost its feed", compared)
	}
	assertEqualState(t, p, pdir, fs, fdir)
}

func drainViews(sub *store.Sub) map[uint64]*store.View {
	views := map[uint64]*store.View{}
	for {
		select {
		case d := <-sub.C():
			if !d.Gap {
				views[d.View.Version] = d.View
			}
		default:
			return views
		}
	}
}
