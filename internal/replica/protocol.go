// Package replica ships the store's write-ahead log over the network:
// a primary-side Server streams committed WAL records (history plus live
// tail) to follower-side Followers, which replay the exact payload bytes
// into their own stores — so a caught-up follower is bit-identical to the
// primary by construction, not by convention.
//
// The wire protocol is a flat stream of checksummed frames over one TCP
// connection per follower:
//
//	[1] frame type
//	[4] payload length (LE uint32)
//	[4] CRC-32C of the payload
//	[n] payload
//
// The follower opens with a Hello carrying the sequence it wants to resume
// from; the primary answers with a Welcome pinning the catch-up target, then
// either a Snapshot (full checkpoint stream, when its log no longer reaches
// back that far) or nothing, followed by Record frames — history first, live
// tail after — and periodic Heartbeats that carry the primary's position so
// the follower can measure lag even when no writes happen.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const protoMagic = "CPNNREP1"

type frameType uint8

const (
	frameHello frameType = iota + 1
	frameWelcome
	frameRecord
	frameSnapshot
	frameHeartbeat
	frameError
)

// frameHeaderSize is type + length + CRC.
const frameHeaderSize = 9

// maxFramePayload bounds one frame: the largest legal WAL record plus
// framing headroom. Mirrors store's record cap.
const maxFramePayload = 1<<30 + 64

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errBadFrame reports a frame that failed structural or checksum validation;
// the stream cannot be trusted past it and the connection is dropped.
var errBadFrame = errors.New("replica: corrupt frame")

// writeFrame frames and writes one message. The caller serializes writers.
func writeFrame(w io.Writer, t frameType, payload []byte) error {
	var hdr [frameHeaderSize]byte
	hdr[0] = byte(t)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads and verifies one frame.
func readFrame(r io.Reader) (frameType, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	t := frameType(hdr[0])
	if t < frameHello || t > frameError {
		return 0, nil, fmt.Errorf("%w: unknown type %d", errBadFrame, hdr[0])
	}
	n := int(binary.LittleEndian.Uint32(hdr[1:5]))
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: %d-byte payload", errBadFrame, n)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[5:9])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: short payload: %v", errBadFrame, err)
	}
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", errBadFrame)
	}
	return t, payload, nil
}

// helloMsg opens a replication stream.
type helloMsg struct {
	// FromSeq is the first sequence the follower wants (last applied + 1).
	FromSeq uint64
}

func (m helloMsg) encode() []byte {
	buf := make([]byte, 0, 16)
	buf = append(buf, protoMagic...)
	return binary.LittleEndian.AppendUint64(buf, m.FromSeq)
}

func decodeHello(b []byte) (helloMsg, error) {
	if len(b) != 16 || string(b[:8]) != protoMagic {
		return helloMsg{}, fmt.Errorf("%w: bad hello", errBadFrame)
	}
	return helloMsg{FromSeq: binary.LittleEndian.Uint64(b[8:])}, nil
}

// positionMsg is the common primary-position block of Welcome and Heartbeat
// frames: where the primary is and when it said so.
type positionMsg struct {
	Seq, Version uint64
	// WALAppended is the primary's cumulative appended-WAL-bytes counter,
	// the byte-lag yardstick matching store.LogRecord.WALOffset.
	WALAppended uint64
	// UnixNano is the primary's clock at send time (informational; lag
	// seconds are computed follower-side to avoid clock skew).
	UnixNano int64
}

func (m positionMsg) encode(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, m.Version)
	buf = binary.LittleEndian.AppendUint64(buf, m.WALAppended)
	return binary.LittleEndian.AppendUint64(buf, uint64(m.UnixNano))
}

func decodePosition(b []byte) (positionMsg, []byte, error) {
	if len(b) < 32 {
		return positionMsg{}, nil, fmt.Errorf("%w: short position", errBadFrame)
	}
	return positionMsg{
		Seq:         binary.LittleEndian.Uint64(b[0:8]),
		Version:     binary.LittleEndian.Uint64(b[8:16]),
		WALAppended: binary.LittleEndian.Uint64(b[16:24]),
		UnixNano:    int64(binary.LittleEndian.Uint64(b[24:32])),
	}, b[32:], nil
}

// welcomeMsg answers a hello: the primary's position (the follower's
// catch-up target) plus the HTTP address writes should be redirected to.
type welcomeMsg struct {
	positionMsg
	HTTPAddr string
}

func (m welcomeMsg) encode() []byte {
	buf := m.positionMsg.encode(make([]byte, 0, 32+len(m.HTTPAddr)))
	return append(buf, m.HTTPAddr...)
}

func decodeWelcome(b []byte) (welcomeMsg, error) {
	pos, rest, err := decodePosition(b)
	if err != nil {
		return welcomeMsg{}, err
	}
	return welcomeMsg{positionMsg: pos, HTTPAddr: string(rest)}, nil
}

// recordMsg carries one committed WAL record's exact payload bytes.
type recordMsg struct {
	Seq, Version uint64
	WALOffset    uint64
	Payload      []byte
}

func (m recordMsg) encode() []byte {
	buf := make([]byte, 0, 24+len(m.Payload))
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, m.Version)
	buf = binary.LittleEndian.AppendUint64(buf, m.WALOffset)
	return append(buf, m.Payload...)
}

func decodeRecord(b []byte) (recordMsg, error) {
	if len(b) < 24 {
		return recordMsg{}, fmt.Errorf("%w: short record", errBadFrame)
	}
	return recordMsg{
		Seq:       binary.LittleEndian.Uint64(b[0:8]),
		Version:   binary.LittleEndian.Uint64(b[8:16]),
		WALOffset: binary.LittleEndian.Uint64(b[16:24]),
		Payload:   b[24:],
	}, nil
}

// snapshotMsg bootstraps a follower whose requested history is gone: a full
// checkpoint stream covering the primary state through Seq/Version.
type snapshotMsg struct {
	Seq, Version uint64
	WALAppended  uint64
	Stream       []byte
}

func (m snapshotMsg) encode() []byte {
	buf := make([]byte, 0, 24+len(m.Stream))
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, m.Version)
	buf = binary.LittleEndian.AppendUint64(buf, m.WALAppended)
	return append(buf, m.Stream...)
}

func decodeSnapshot(b []byte) (snapshotMsg, error) {
	if len(b) < 24 {
		return snapshotMsg{}, fmt.Errorf("%w: short snapshot", errBadFrame)
	}
	return snapshotMsg{
		Seq:         binary.LittleEndian.Uint64(b[0:8]),
		Version:     binary.LittleEndian.Uint64(b[8:16]),
		WALAppended: binary.LittleEndian.Uint64(b[16:24]),
		Stream:      b[24:],
	}, nil
}
