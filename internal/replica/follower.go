package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// FollowerConfig configures a replication follower.
type FollowerConfig struct {
	// Store is the local store, opened with store.OpenFollower. Required.
	// The follower never closes it; the caller owns its lifecycle.
	Store *store.Store
	// Primary is the primary's replication address. Required.
	Primary string
	// Dir, when set, is the data dir where replica.json is maintained for
	// offline inspection (cpnn-store inspect).
	Dir string
	// DialTimeout bounds each connection attempt; 0 means 5s.
	DialTimeout time.Duration
	// ReadTimeout bounds each frame read; 0 means 15s. Must exceed the
	// primary's heartbeat period or healthy idle streams get cut.
	ReadTimeout time.Duration
	// WriteTimeout bounds the hello write; 0 means 10s.
	WriteTimeout time.Duration
	// BackoffMin and BackoffMax bound the reconnect backoff; 0 means
	// 100ms / 5s.
	BackoffMin, BackoffMax time.Duration
	// BatchMax caps how many already-received records one ApplyReplicated
	// call (one follower fsync) absorbs; 0 means 64.
	BatchMax int
	// Logger receives structured replication-stream events (connects,
	// snapshot bootstraps, stream errors); nil discards them.
	Logger *slog.Logger
	// Tracer, when set, records one "wal.replay" span per applied record
	// batch, under follower-local traces.
	Tracer *obs.Tracer
	// ApplyLag, when set, observes the follower's seconds-behind after each
	// applied batch — the histogram behind the replica lag alerts (the lag
	// gauges only sample at scrape time).
	ApplyLag *obs.Histogram
}

// Lag is the follower's distance behind the primary, three ways.
type Lag struct {
	// Versions is primary version − applied version (0 when caught up).
	Versions uint64
	// Seconds is how long the follower has continuously been behind the
	// last-heard primary position; 0 when caught up. Computed from the
	// follower's own clock, so primary clock skew cannot distort it.
	Seconds float64
	// Bytes is primary appended-WAL bytes − follower applied offset.
	Bytes uint64
}

// FollowerStats is a snapshot of a follower's replication state.
type FollowerStats struct {
	// Connected reports a live stream; CaughtUp reports the first full
	// catch-up happened (sticky — serving gates on it).
	Connected, CaughtUp bool
	// AppliedSeq and AppliedVersion are the local store position.
	AppliedSeq, AppliedVersion uint64
	// PrimarySeq and PrimaryVersion are the last-heard primary position.
	PrimarySeq, PrimaryVersion uint64
	// RecordsApplied and BytesApplied count replayed records (bytes count op
	// payloads, matching WAL accounting).
	RecordsApplied, BytesApplied uint64
	// Reconnects counts streams re-established after a working one died;
	// SnapshotBootstraps counts full-state installs.
	Reconnects, SnapshotBootstraps uint64
	// Lag is the current three-way lag.
	Lag Lag
}

// Follower replicates a primary into a local follower store: it dials with
// capped exponential backoff, replays shipped records through the store's
// normal commit machinery (batching consecutive already-received records
// into one fsync), installs snapshots when its position fell off the
// primary's log, and reconnects through primary restarts and its own
// position automatically — a restarted follower resumes from its local WAL.
// Start with StartFollower; Close stops replication (the store stays open).
type Follower struct {
	cfg FollowerConfig

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	caughtUpCh   chan struct{}
	caughtUpOnce sync.Once

	connected   atomic.Bool
	caughtUp    atomic.Bool
	primaryHTTP atomic.Value // string

	primarySeq     atomic.Uint64
	primaryVersion atomic.Uint64
	primaryWAL     atomic.Uint64
	appliedWAL     atomic.Uint64
	behindSince    atomic.Int64 // unix nanos; 0 = even with last-heard position

	recordsApplied     atomic.Uint64
	bytesApplied       atomic.Uint64
	reconnects         atomic.Uint64
	snapshotBootstraps atomic.Uint64

	lastErr       atomic.Value // string
	lastStateSync atomic.Int64 // unix nanos of the last replica.json write
}

// StartFollower begins replicating cfg.Primary into cfg.Store.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Store == nil {
		return nil, errors.New("replica: FollowerConfig.Store is required")
	}
	if cfg.Store.Role() != store.RoleFollower {
		return nil, errors.New("replica: FollowerConfig.Store must be opened with store.OpenFollower")
	}
	if cfg.Primary == "" {
		return nil, errors.New("replica: FollowerConfig.Primary is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 15 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 64
	}
	cfg.Logger = obs.Or(cfg.Logger)
	f := &Follower{
		cfg:        cfg,
		closed:     make(chan struct{}),
		caughtUpCh: make(chan struct{}),
	}
	f.primaryHTTP.Store("")
	f.lastErr.Store("")
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Store returns the local follower store.
func (f *Follower) Store() *store.Store { return f.cfg.Store }

// Source returns the primary's replication address.
func (f *Follower) Source() string { return f.cfg.Primary }

// PrimaryHTTP returns the primary's advertised HTTP address ("" if none was
// advertised yet) — the redirect target for writes.
func (f *Follower) PrimaryHTTP() string { return f.primaryHTTP.Load().(string) }

// Connected reports a currently live replication stream.
func (f *Follower) Connected() bool { return f.connected.Load() }

// CaughtUp reports that the follower has fully caught up with the primary
// position at least once — the gate for serving reads. Sticky: brief lag
// afterwards does not clear it.
func (f *Follower) CaughtUp() bool { return f.caughtUp.Load() }

// WaitCaughtUp blocks until the first catch-up, the context ends, or the
// follower closes.
func (f *Follower) WaitCaughtUp(ctx context.Context) error {
	select {
	case <-f.caughtUpCh:
		return nil
	case <-f.closed:
		return errors.New("replica: follower closed before catching up")
	case <-ctx.Done():
		return ctx.Err()
	}
}

// LastError returns the most recent stream error ("" if none).
func (f *Follower) LastError() string { return f.lastErr.Load().(string) }

// Lag returns the current three-way replication lag.
func (f *Follower) Lag() Lag {
	v := f.cfg.Store.View()
	var lag Lag
	if pv := f.primaryVersion.Load(); pv > v.Version {
		lag.Versions = pv - v.Version
	}
	if pw, aw := f.primaryWAL.Load(), f.appliedWAL.Load(); pw > aw {
		lag.Bytes = pw - aw
	}
	if since := f.behindSince.Load(); since != 0 {
		lag.Seconds = time.Since(time.Unix(0, since)).Seconds()
	}
	return lag
}

// Stats returns a snapshot of the follower's replication state.
func (f *Follower) Stats() FollowerStats {
	v := f.cfg.Store.View()
	return FollowerStats{
		Connected:          f.connected.Load(),
		CaughtUp:           f.caughtUp.Load(),
		AppliedSeq:         v.Seq,
		AppliedVersion:     v.Version,
		PrimarySeq:         f.primarySeq.Load(),
		PrimaryVersion:     f.primaryVersion.Load(),
		RecordsApplied:     f.recordsApplied.Load(),
		BytesApplied:       f.bytesApplied.Load(),
		Reconnects:         f.reconnects.Load(),
		SnapshotBootstraps: f.snapshotBootstraps.Load(),
		Lag:                f.Lag(),
	}
}

// Close stops replication and waits for the stream goroutine. The store is
// left open (the caller owns it); the final position lands in replica.json.
func (f *Follower) Close() error {
	f.closeOnce.Do(func() { close(f.closed) })
	f.wg.Wait()
	f.writeState(true)
	return nil
}

// run is the reconnect loop: dial, stream until the connection dies, back
// off (reset whenever a stream got as far as a welcome), repeat.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.cfg.BackoffMin
	first := true
	for {
		select {
		case <-f.closed:
			return
		default:
		}
		welcomed := f.stream()
		f.connected.Store(false)
		select {
		case <-f.closed:
			return
		default:
		}
		if welcomed {
			backoff = f.cfg.BackoffMin
			f.reconnects.Add(1) // a working stream died; the next dial is a reconnect
		} else if !first {
			backoff = min(backoff*2, f.cfg.BackoffMax)
		}
		first = false
		select {
		case <-f.closed:
			return
		case <-time.After(backoff):
		}
	}
}

func (f *Follower) setErr(err error) {
	if err != nil {
		f.lastErr.Store(err.Error())
		f.cfg.Logger.Warn("replication stream error", "primary", f.cfg.Primary, "err", err)
	}
}

// stream runs one connection: handshake, then replay frames until the
// stream dies. Reports whether a welcome was received (the dial worked).
func (f *Follower) stream() (welcomed bool) {
	conn, err := net.DialTimeout("tcp", f.cfg.Primary, f.cfg.DialTimeout)
	if err != nil {
		f.setErr(err)
		return false
	}
	defer conn.Close()
	// Tear the blocking read down when Close lands mid-stream.
	streamDone := make(chan struct{})
	defer close(streamDone)
	go func() {
		select {
		case <-f.closed:
			conn.Close()
		case <-streamDone:
		}
	}()

	conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
	hello := helloMsg{FromSeq: f.cfg.Store.View().Seq + 1}
	if err := writeFrame(conn, frameHello, hello.encode()); err != nil {
		f.setErr(err)
		return false
	}

	r := bufio.NewReaderSize(conn, 256<<10)
	var syncTarget uint64
	for {
		conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout))
		t, payload, err := readFrame(r)
		if err != nil {
			f.setErr(err)
			return welcomed
		}
		switch t {
		case frameWelcome:
			wm, err := decodeWelcome(payload)
			if err != nil {
				f.setErr(err)
				return welcomed
			}
			welcomed = true
			syncTarget = wm.Seq
			if wm.HTTPAddr != "" {
				f.primaryHTTP.Store(wm.HTTPAddr)
			}
			f.notePrimary(wm.positionMsg)
			f.connected.Store(true)
			f.maybeCaughtUp(syncTarget)
			f.writeState(true)

		case frameSnapshot:
			sm, err := decodeSnapshot(payload)
			if err != nil {
				f.setErr(err)
				return welcomed
			}
			if err := f.cfg.Store.InstallSnapshot(sm.Stream); err != nil {
				f.setErr(err)
				return welcomed
			}
			f.snapshotBootstraps.Add(1)
			f.cfg.Logger.Info("snapshot bootstrap installed",
				"primary", f.cfg.Primary, "seq", sm.Seq, "version", sm.Version)
			f.appliedWAL.Store(sm.WALAppended)
			f.notePrimary(positionMsg{Seq: sm.Seq, Version: sm.Version, WALAppended: sm.WALAppended})
			f.maybeCaughtUp(syncTarget)
			f.writeState(true)

		case frameRecord:
			rm, err := decodeRecord(payload)
			if err != nil {
				f.setErr(err)
				return welcomed
			}
			recs := []store.LogRecord{{Seq: rm.Seq, Version: rm.Version, WALOffset: rm.WALOffset, Payload: rm.Payload}}
			var pendingT frameType
			var pendingPayload []byte
			// Group commit: fold records that already arrived into the same
			// ApplyReplicated call — one follower fsync for a burst, the same
			// trick the primary's committer plays on concurrent writers.
			for r.Buffered() >= frameHeaderSize && len(recs) < f.cfg.BatchMax {
				t2, p2, err := readFrame(r)
				if err != nil {
					f.setErr(err)
					return welcomed
				}
				if t2 != frameRecord {
					pendingT, pendingPayload = t2, p2
					break
				}
				rm2, err := decodeRecord(p2)
				if err != nil {
					f.setErr(err)
					return welcomed
				}
				recs = append(recs, store.LogRecord{Seq: rm2.Seq, Version: rm2.Version, WALOffset: rm2.WALOffset, Payload: rm2.Payload})
			}
			if !f.applyRecords(recs, syncTarget) {
				return welcomed
			}
			if pendingT != 0 && !f.handleAux(pendingT, pendingPayload, syncTarget) {
				return welcomed
			}

		case frameHeartbeat:
			if !f.handleAux(t, payload, syncTarget) {
				return welcomed
			}

		case frameError:
			f.setErr(fmt.Errorf("replica: primary: %s", payload))
			return welcomed

		default:
			f.setErr(fmt.Errorf("replica: unexpected %d frame", t))
			return welcomed
		}
	}
}

// applyRecords replays one batch; false means the stream must restart.
func (f *Follower) applyRecords(recs []store.LogRecord, syncTarget uint64) bool {
	var bytes uint64
	for _, rec := range recs {
		bytes += uint64(len(rec.Payload))
	}
	_, sp := f.cfg.Tracer.StartSpan(context.Background(), "replica", "wal.replay")
	sp.SetAttr("records", strconv.Itoa(len(recs)))
	sp.SetAttr("bytes", strconv.FormatUint(bytes, 10))
	sp.SetAttr("seq_first", strconv.FormatUint(recs[0].Seq, 10))
	sp.SetAttr("seq_last", strconv.FormatUint(recs[len(recs)-1].Seq, 10))
	if _, err := f.cfg.Store.ApplyReplicated(recs); err != nil {
		// Out-of-sync: reconnect resyncs from the store's actual position.
		// Anything else (closed, broken) also ends the stream; the reconnect
		// loop keeps trying until Close.
		f.setErr(err)
		sp.SetAttr("error", err.Error())
		sp.End()
		return false
	}
	last := recs[len(recs)-1]
	f.recordsApplied.Add(uint64(len(recs)))
	f.bytesApplied.Add(bytes)
	f.appliedWAL.Store(last.WALOffset)
	f.notePrimary(positionMsg{Seq: last.Seq, Version: last.Version, WALAppended: last.WALOffset})
	f.maybeCaughtUp(syncTarget)
	f.writeState(false)
	sp.End()
	f.cfg.ApplyLag.Observe(f.Lag().Seconds)
	return true
}

// handleAux processes a non-record frame read during batching.
func (f *Follower) handleAux(t frameType, payload []byte, syncTarget uint64) bool {
	switch t {
	case frameHeartbeat:
		pm, _, err := decodePosition(payload)
		if err != nil {
			f.setErr(err)
			return false
		}
		f.notePrimary(pm)
		f.writeState(false)
		return true
	case frameError:
		f.setErr(fmt.Errorf("replica: primary: %s", payload))
		return false
	case frameSnapshot:
		// The primary only snapshots at stream (re)starts, never after
		// records on the same stream.
		f.setErr(errors.New("replica: unexpected mid-stream snapshot"))
		return false
	default:
		f.setErr(fmt.Errorf("replica: unexpected %d frame", t))
		return false
	}
}

// notePrimary folds a heard primary position into the lag accounting.
// Positions only move forward (records and heartbeats can interleave).
func (f *Follower) notePrimary(pm positionMsg) {
	storeMax(&f.primarySeq, pm.Seq)
	storeMax(&f.primaryVersion, pm.Version)
	storeMax(&f.primaryWAL, pm.WALAppended)
	// Behind-ness is measured against the last-heard position with the
	// follower's own clock: the timer starts when we learn we are behind and
	// clears the moment we draw level.
	if f.cfg.Store.View().Seq >= f.primarySeq.Load() {
		f.behindSince.Store(0)
	} else {
		f.behindSince.CompareAndSwap(0, time.Now().UnixNano())
	}
}

func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// maybeCaughtUp flips the sticky caught-up gate once the local position
// reaches the welcome-time primary position.
func (f *Follower) maybeCaughtUp(syncTarget uint64) {
	if f.caughtUp.Load() {
		return
	}
	if f.cfg.Store.View().Seq >= syncTarget {
		f.caughtUp.Store(true)
		f.caughtUpOnce.Do(func() { close(f.caughtUpCh) })
		f.cfg.Logger.Info("caught up with primary",
			"primary", f.cfg.Primary, "seq", f.cfg.Store.View().Seq)
		f.writeState(true)
	}
}

// writeState maintains replica.json: immediately on transitions (force), at
// most every 2s otherwise.
func (f *Follower) writeState(force bool) {
	if f.cfg.Dir == "" {
		return
	}
	now := time.Now().UnixNano()
	last := f.lastStateSync.Load()
	if !force && now-last < 2*int64(time.Second) {
		return
	}
	if !f.lastStateSync.CompareAndSwap(last, now) {
		return // someone else is writing
	}
	v := f.cfg.Store.View()
	st := State{
		Role:               store.RoleFollower.String(),
		Source:             f.cfg.Primary,
		PrimaryHTTP:        f.PrimaryHTTP(),
		AppliedSeq:         v.Seq,
		AppliedVersion:     v.Version,
		CaughtUp:           f.caughtUp.Load(),
		SnapshotBootstraps: f.snapshotBootstraps.Load(),
		Reconnects:         f.reconnects.Load(),
	}
	if err := writeState(f.cfg.Dir, st); err != nil {
		f.setErr(err)
	}
}
