package replica

import (
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/verify"
)

// TestConcurrentReplicationRace exercises every concurrent surface at once —
// parallel primary writers (group commit), two followers streaming the same
// log, a monitor with subscribers riding one follower's change feed, and
// stats/lag polling — and then proves both followers converged to the
// primary's exact state. Run with -race.
func TestConcurrentReplicationRace(t *testing.T) {
	pdir, f1dir, f2dir := t.TempDir(), t.TempDir(), t.TempDir()
	p, srv := startPrimary(t, pdir)
	defer p.Close()
	defer srv.Close()

	fs1, f1 := startFollower(t, f1dir, srv.Addr())
	defer fs1.Close()
	defer f1.Close()
	fs2, f2 := startFollower(t, f2dir, srv.Addr())
	defer fs2.Close()
	defer f2.Close()

	// A monitor rides follower 1's change feed, with a churning subscriber.
	mon, err := monitor.New(monitor.Config{Store: fs1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	for i := 0; i < 4; i++ {
		if _, err := mon.Register(monitor.Spec{Kind: monitor.KindCPNN, Q: float64(i * 100),
			Constraint: verify.Constraint{P: 0.3, Delta: 0.01}}); err != nil {
			t.Fatal(err)
		}
	}
	stopPoll := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(2)
	go func() { // subscriber churn
		defer pollWG.Done()
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			sub, err := mon.Subscribe(nil, 16)
			if err != nil {
				return
			}
			time.Sleep(time.Millisecond)
			sub.Close()
		}
	}()
	go func() { // stats and lag polling
		defer pollWG.Done()
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			_ = f1.Stats()
			_ = f2.Lag()
			_ = srv.Stats()
			_, _, _ = ReadState(f1dir)
			time.Sleep(time.Millisecond)
		}
	}()

	// Concurrent writers, each owning its objects.
	const writers, rounds = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []uint64
			for r := 0; r < rounds; r++ {
				var ops []store.Op
				switch {
				case len(mine) < 3 || r%3 == 0:
					lo := float64(w*1000 + r)
					ops = append(ops, store.InsertObject(pdf.MustUniform(lo, lo+5)))
				case r%3 == 1:
					id := mine[r%len(mine)]
					lo := float64(w*1000 + r + 500)
					ops = append(ops, store.UpdateObject(id, pdf.MustUniform(lo, lo+3)))
				default:
					ops = append(ops, store.Delete(mine[len(mine)-1]))
					mine = mine[:len(mine)-1]
				}
				res, err := p.Apply(ops)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				for i, op := range ops {
					if op.Code != store.OpDelete && op.ID == 0 {
						mine = append(mine, res.IDs[i])
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopPoll)
	pollWG.Wait()

	waitConverged(t, p, fs1)
	waitConverged(t, p, fs2)
	if err := mon.Sync(10 * time.Second); err != nil {
		t.Fatalf("monitor sync on follower feed: %v", err)
	}
	assertEqualState(t, p, pdir, fs1, f1dir)
	// fs1's checkpoint just advanced its file; compare fs2 against the
	// primary as well for full three-way agreement.
	assertEqualState(t, p, pdir, fs2, f2dir)
}
