package replica

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/pdf"
	"repro/internal/store"
)

// chaosProxy sits between a follower and the primary's replication listener
// and sabotages the FIRST connection through it — flipping one byte of the
// primary→follower stream or cutting the connection after a byte budget.
// Later connections pass through untouched, so the test observes the
// follower detect the damage, drop the stream, reconnect and converge.
type chaosProxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	conns int

	corruptAfter int64 // >0: on conn #1, XOR one byte at this offset
	cutAfter     int64 // >0: on conn #1, close both sides at this offset
}

func startChaosProxy(t *testing.T, target string, corruptAfter, cutAfter int64) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: target, corruptAfter: corruptAfter, cutAfter: cutAfter}
	t.Cleanup(func() { ln.Close() })
	go p.acceptLoop()
	return p
}

func (p *chaosProxy) Addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		p.conns++
		sabotage := p.conns == 1
		p.mu.Unlock()
		go p.pipe(client, sabotage)
	}
}

func (p *chaosProxy) pipe(client net.Conn, sabotage bool) {
	defer client.Close()
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer server.Close()
	go io.Copy(server, client) // hello flows through untouched
	if !sabotage {
		io.Copy(client, server)
		return
	}
	var written int64
	buf := make([]byte, 4<<10)
	for {
		n, err := server.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if p.cutAfter > 0 && written+int64(n) >= p.cutAfter {
				// Forward the torn prefix, then drop the connection cold.
				client.Write(chunk[:p.cutAfter-written])
				return
			}
			if p.corruptAfter > 0 && written <= p.corruptAfter && p.corruptAfter < written+int64(n) {
				chunk[p.corruptAfter-written] ^= 0xFF
			}
			written += int64(n)
			if _, err := client.Write(chunk); err != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// startChaosFollower attaches a follower through a chaos proxy with tight
// timeouts so corrupted length fields cannot stall the test.
func startChaosFollower(t *testing.T, dir, addr string) (*store.Store, *Follower) {
	t.Helper()
	s, err := store.OpenFollower(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := StartFollower(FollowerConfig{
		Store:       s,
		Primary:     addr,
		Dir:         dir,
		ReadTimeout: time.Second,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	})
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	return s, f
}

func populate(t *testing.T, p *store.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := p.Apply([]store.Op{store.InsertObject(pdf.MustUniform(float64(i), float64(i+2)))}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFollowerRecoversFromCorruptedStream(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p, srv := startPrimary(t, pdir)
	defer p.Close()
	defer srv.Close()
	populate(t, p, 40)

	// Flip a byte mid-history: the frame CRC (or a mangled header) must kill
	// the stream, never reach the store.
	proxy := startChaosProxy(t, srv.Addr(), 700, 0)
	fs, f := startChaosFollower(t, fdir, proxy.Addr())
	defer fs.Close()
	defer f.Close()

	waitCaughtUp(t, f)
	waitConverged(t, p, fs)
	if st := f.Stats(); st.Reconnects == 0 {
		t.Fatalf("follower converged without dropping the corrupted stream: %+v", st)
	}
	assertEqualState(t, p, pdir, fs, fdir)
}

func TestFollowerRecoversFromMidStreamDisconnect(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p, srv := startPrimary(t, pdir)
	defer p.Close()
	defer srv.Close()
	populate(t, p, 40)

	// Cut the stream partway through history — a torn frame at the cut.
	proxy := startChaosProxy(t, srv.Addr(), 0, 900)
	fs, f := startChaosFollower(t, fdir, proxy.Addr())
	defer fs.Close()
	defer f.Close()

	waitCaughtUp(t, f)
	waitConverged(t, p, fs)
	if st := f.Stats(); st.Reconnects == 0 {
		t.Fatalf("follower converged without a reconnect: %+v", st)
	}
	// The records applied before the cut were valid; the resume must not
	// have re-applied them (no duplicate application, no snapshot).
	if st := f.Stats(); st.SnapshotBootstraps != 0 {
		t.Fatalf("disconnect forced a snapshot bootstrap: %+v", st)
	}
	if fs.View().Seq != 40 {
		t.Fatalf("follower at seq %d, want 40", fs.View().Seq)
	}
	assertEqualState(t, p, pdir, fs, fdir)
}

func TestCorruptFrameRejected(t *testing.T) {
	// Unit-level: every single-byte corruption of a valid frame must be
	// rejected by readFrame, not silently decoded.
	rm := recordMsg{Seq: 3, Version: 3, WALOffset: 99, Payload: []byte("opspayload")}
	var wire []byte
	{
		w := &sliceWriter{}
		if err := writeFrame(w, frameRecord, rm.encode()); err != nil {
			t.Fatal(err)
		}
		wire = w.b
	}
	for i := range wire {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0x01
		tp, payload, err := readFrame(&sliceReader{b: mut})
		if err != nil {
			continue // rejected — good
		}
		// A flipped bit that still frames must at least not masquerade as a
		// clean record frame with intact content.
		if tp == frameRecord {
			if rm2, err := decodeRecord(payload); err == nil &&
				rm2.Seq == rm.Seq && string(rm2.Payload) == string(rm.Payload) && rm2.WALOffset == rm.WALOffset && rm2.Version == rm.Version {
				t.Fatalf("corruption at byte %d went undetected", i)
			}
		}
	}
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

type sliceReader struct {
	b   []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}
