package replica

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// StateFileName is the follower-state file kept alongside the store's WAL
// and checkpoint in the data dir, so tooling (cpnn-store inspect) can report
// replication state without the process running.
const StateFileName = "replica.json"

// State is the persisted follower replication state. The store files remain
// the source of truth for applied seq/version — this file records the
// replication-layer facts a data dir alone cannot tell: where the data came
// from and how the stream was going when last written.
type State struct {
	// Role is "follower" (the file only exists on follower dirs).
	Role string `json:"role"`
	// Source is the primary's replication address.
	Source string `json:"source"`
	// PrimaryHTTP is the primary's advertised HTTP address, if any.
	PrimaryHTTP string `json:"primary_http,omitempty"`
	// AppliedSeq and AppliedVersion are the follower position when the file
	// was written (authoritative live values come from the store itself).
	AppliedSeq     uint64 `json:"applied_seq"`
	AppliedVersion uint64 `json:"applied_version"`
	// CaughtUp reports whether the follower had reached its first catch-up.
	CaughtUp bool `json:"caught_up"`
	// SnapshotBootstraps and Reconnects count stream restarts over the
	// follower's lifetime (this process).
	SnapshotBootstraps uint64 `json:"snapshot_bootstraps"`
	Reconnects         uint64 `json:"reconnects"`
	// UpdatedUnix is the write time (seconds).
	UpdatedUnix int64 `json:"updated_unix"`
}

// writeState persists st atomically (tmp + rename).
func writeState(dir string, st State) error {
	st.UpdatedUnix = time.Now().Unix()
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, StateFileName+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, StateFileName))
}

// ReadState loads the replication state of a data dir. ok=false means the
// dir has no state file (it is not a follower dir).
func ReadState(dir string) (st State, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, StateFileName))
	if os.IsNotExist(err) {
		return State{}, false, nil
	}
	if err != nil {
		return State{}, false, err
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return State{}, false, fmt.Errorf("replica: parsing %s: %w", StateFileName, err)
	}
	return st, true, nil
}
