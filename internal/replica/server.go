package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// ServerConfig configures the primary-side replication listener.
type ServerConfig struct {
	// Store is the primary store whose log is served. Required.
	Store *store.Store
	// Addr is the TCP listen address (e.g. ":7071" or "127.0.0.1:0").
	Addr string
	// AdvertiseHTTP, when set, is the primary's HTTP address sent to
	// followers so they can redirect writes.
	AdvertiseHTTP string
	// HeartbeatEvery is the idle-stream heartbeat period; 0 means 1s.
	HeartbeatEvery time.Duration
	// SubBuffer is the per-follower live-tail buffer in records; 0 means
	// store.DefaultLogBuffer. A follower that falls further behind than this
	// is transparently re-synced from the on-disk log.
	SubBuffer int
	// WriteTimeout bounds each frame write; 0 means 10s.
	WriteTimeout time.Duration
}

// ServerStats is a snapshot of a replication server's counters.
type ServerStats struct {
	// Followers is the number of currently connected followers.
	Followers int64
	// RecordsShipped and BytesShipped count record frames sent (bytes count
	// op payloads, matching WAL byte accounting).
	RecordsShipped, BytesShipped uint64
	// SnapshotsSent counts snapshot bootstraps served.
	SnapshotsSent uint64
	// Heartbeats counts heartbeat frames sent.
	Heartbeats uint64
	// Resyncs counts transparent log re-syncs after a follower's live tail
	// overflowed.
	Resyncs uint64
}

// Server streams the store's committed log to followers. One goroutine per
// connection; a connection serves history from the on-disk WAL (or a
// snapshot when the log was truncated past the requested position), then its
// live tail, with heartbeats carrying the primary position during idle
// stretches. Start with StartServer; Close stops the listener and drops
// every follower.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	followers      atomic.Int64
	recordsShipped atomic.Uint64
	bytesShipped   atomic.Uint64
	snapshotsSent  atomic.Uint64
	heartbeats     atomic.Uint64
	resyncs        atomic.Uint64
}

// StartServer listens on cfg.Addr and begins accepting followers.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("replica: ServerConfig.Store is required")
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("replica: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the actual listen address (resolving ":0" ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Followers:      s.followers.Load(),
		RecordsShipped: s.recordsShipped.Load(),
		BytesShipped:   s.bytesShipped.Load(),
		SnapshotsSent:  s.snapshotsSent.Load(),
		Heartbeats:     s.heartbeats.Load(),
		Resyncs:        s.resyncs.Load(),
	}
}

// Close stops the listener, drops every follower connection, and waits for
// the per-connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serve runs one follower connection until it errors, lags beyond recovery
// (never — lag transparently re-syncs), or either side closes.
func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)

	// Handshake: one hello frame, bounded.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	t, payload, err := readFrame(conn)
	if err != nil || t != frameHello {
		return
	}
	hello, err := decodeHello(payload)
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	s.followers.Add(1)
	defer s.followers.Add(-1)

	// The follower never speaks again on a healthy stream; a reader
	// goroutine watches for EOF so a dead peer tears the writer down
	// promptly instead of lingering until the next write times out.
	go func() {
		var one [1]byte
		conn.Read(one[:])
		conn.Close()
	}()

	w := bufio.NewWriterSize(conn, 64<<10)
	send := func(t frameType, payload []byte) error {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := writeFrame(w, t, payload); err != nil {
			return err
		}
		return w.Flush()
	}

	from := hello.FromSeq
	welcomed := false
	for {
		res, err := s.cfg.Store.SyncFrom(from, s.cfg.SubBuffer)
		if err != nil {
			send(frameError, []byte(err.Error()))
			return
		}
		if !welcomed {
			welcomed = true
			wm := welcomeMsg{
				positionMsg: positionMsg{
					Seq: res.Seq, Version: res.Version,
					WALAppended: res.WALAppended, UnixNano: time.Now().UnixNano(),
				},
				HTTPAddr: s.cfg.AdvertiseHTTP,
			}
			if err := send(frameWelcome, wm.encode()); err != nil {
				res.Sub.Close()
				return
			}
		}
		lastSent := res.Seq
		if res.Snapshot != nil {
			sm := snapshotMsg{Seq: res.Seq, Version: res.Version,
				WALAppended: res.WALAppended, Stream: res.Snapshot}
			if err := send(frameSnapshot, sm.encode()); err != nil {
				res.Sub.Close()
				return
			}
			s.snapshotsSent.Add(1)
		}
		for _, rec := range res.Records {
			if err := s.sendRecord(send, rec); err != nil {
				res.Sub.Close()
				return
			}
		}
		again, ok := s.streamTail(send, res.Sub, &lastSent)
		res.Sub.Close()
		if !ok {
			return
		}
		if !again {
			return // store closed; nothing more will ever commit
		}
		// Live tail overflowed: pick history back up from where we got to.
		s.resyncs.Add(1)
		from = lastSent + 1
	}
}

func (s *Server) sendRecord(send func(frameType, []byte) error, rec store.LogRecord) error {
	rm := recordMsg{Seq: rec.Seq, Version: rec.Version, WALOffset: rec.WALOffset, Payload: rec.Payload}
	if err := send(frameRecord, rm.encode()); err != nil {
		return err
	}
	s.recordsShipped.Add(1)
	s.bytesShipped.Add(uint64(len(rec.Payload)))
	return nil
}

// streamTail relays the live subscription until it closes or the connection
// dies. Returns (resync, ok): resync means the sub lagged and the caller
// should re-sync from lastSent; !ok means the connection is done.
func (s *Server) streamTail(send func(frameType, []byte) error, sub *store.LogSub, lastSent *uint64) (bool, bool) {
	hb := time.NewTicker(s.cfg.HeartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case rec, ok := <-sub.C():
			if !ok {
				if sub.Lagged() {
					return true, true
				}
				return false, true // store closed
			}
			if err := s.sendRecord(send, rec); err != nil {
				return false, false
			}
			*lastSent = rec.Seq
		case <-hb.C:
			v := s.cfg.Store.View()
			pm := positionMsg{
				Seq: v.Seq, Version: v.Version,
				WALAppended: s.cfg.Store.Stats().WALAppendedBytes,
				UnixNano:    time.Now().UnixNano(),
			}
			if err := send(frameHeartbeat, pm.encode(nil)); err != nil {
				return false, false
			}
			s.heartbeats.Add(1)
		}
	}
}
