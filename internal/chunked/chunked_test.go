package chunked

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	var s Slice[int]
	const n = 3*ChunkSize + 17
	for i := 0; i < n; i++ {
		s.Append(i)
	}
	if s.Len() != n {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 0; i < n; i += 31 {
		if s.At(i) != i {
			t.Fatalf("At(%d) = %d", i, s.At(i))
		}
	}
	s.Set(5, -5)
	s.Set(ChunkSize+1, -1)
	if s.At(5) != -5 || s.At(ChunkSize+1) != -1 {
		t.Fatal("Set did not stick")
	}
	s.Truncate(ChunkSize + 2)
	if s.Len() != ChunkSize+2 || s.At(ChunkSize+1) != -1 {
		t.Fatal("truncate lost data")
	}
	s.Append(99)
	if s.At(ChunkSize+2) != 99 {
		t.Fatal("append after truncate")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	var s Slice[int]
	for i := 0; i < 2*ChunkSize+50; i++ {
		s.Append(i)
	}
	snap := s.Snapshot()

	// Mutate every chunk after the snapshot.
	for i := 0; i < s.Len(); i += 7 {
		s.Set(i, -s.At(i))
	}
	s.Truncate(ChunkSize / 2)
	for i := 0; i < ChunkSize; i++ {
		s.Append(1000 + i)
	}

	if snap.Len() != 2*ChunkSize+50 {
		t.Fatalf("snap len = %d", snap.Len())
	}
	for i := 0; i < snap.Len(); i++ {
		if snap.At(i) != i {
			t.Fatalf("snap.At(%d) = %d after churn", i, snap.At(i))
		}
	}
}

func TestSnapshotChain(t *testing.T) {
	// The store's pattern: snapshot per commit, small delta in between.
	rng := rand.New(rand.NewSource(3))
	var s Slice[int]
	want := []int{}
	type frozen struct {
		snap Snap[int]
		vals []int
	}
	var gens []frozen
	for g := 0; g < 30; g++ {
		for d := 0; d < 20; d++ {
			switch {
			case len(want) > 0 && rng.Intn(3) == 0:
				i := rng.Intn(len(want))
				want[i] = g*1000 + d
				s.Set(i, g*1000+d)
			case len(want) > ChunkSize && rng.Intn(10) == 0:
				want = want[:len(want)-ChunkSize/2]
				s.Truncate(len(want))
			default:
				want = append(want, g*1000+500+d)
				s.Append(g*1000 + 500 + d)
			}
		}
		gens = append(gens, frozen{s.Snapshot(), append([]int(nil), want...)})
	}
	for g, fr := range gens {
		if fr.snap.Len() != len(fr.vals) {
			t.Fatalf("gen %d: len %d want %d", g, fr.snap.Len(), len(fr.vals))
		}
		for i, v := range fr.vals {
			if fr.snap.At(i) != v {
				t.Fatalf("gen %d: At(%d) = %d want %d", g, i, fr.snap.At(i), v)
			}
		}
	}
}

func TestBoundsPanics(t *testing.T) {
	var s Slice[int]
	s.Append(1)
	for _, f := range []func(){
		func() { s.At(1) },
		func() { s.At(-1) },
		func() { s.Set(1, 0) },
		func() { s.Truncate(2) },
		func() { s.Snapshot().At(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on out-of-range access")
				}
			}()
			f()
		}()
	}
}
