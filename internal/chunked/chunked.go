// Package chunked provides a chunked slice with O(chunks) snapshots and
// copy-on-write mutation, the in-memory half of the store's overlay MVCC
// views: a committed batch snapshots the slot table in O(n/ChunkSize) pointer
// copies, then edits only the chunks its delta touches, so commit cost tracks
// the batch size instead of the dataset size.
package chunked

import "fmt"

// ChunkSize is the number of items per chunk. 512 keeps a chunk of
// pointer-sized records in the tens-of-kilobytes range: big enough that the
// per-snapshot flag sweep is negligible, small enough that copying one chunk
// on first write is cheap.
const ChunkSize = 512

// Slice is a mutable chunked slice. The zero value is an empty slice.
// It follows a single-writer/concurrent-snapshot-readers contract: one
// goroutine mutates, any number may read Snaps taken before the mutation.
type Slice[T any] struct {
	chunks []*[ChunkSize]T
	// shared marks chunks referenced by at least one Snap; they are copied
	// before the next write touches them.
	shared []bool
	n      int
}

// Len returns the number of items.
func (s *Slice[T]) Len() int { return s.n }

// At returns item i.
func (s *Slice[T]) At(i int) T {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("chunked: index %d out of range [0, %d)", i, s.n))
	}
	return s.chunks[i/ChunkSize][i%ChunkSize]
}

// own ensures chunk c is exclusively owned, copying it if a Snap shares it.
func (s *Slice[T]) own(c int) {
	if s.shared[c] {
		cp := *s.chunks[c]
		s.chunks[c] = &cp
		s.shared[c] = false
	}
}

// Set replaces item i.
func (s *Slice[T]) Set(i int, v T) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("chunked: index %d out of range [0, %d)", i, s.n))
	}
	c := i / ChunkSize
	s.own(c)
	s.chunks[c][i%ChunkSize] = v
}

// Append adds an item at the end.
func (s *Slice[T]) Append(v T) {
	c := s.n / ChunkSize
	if c == len(s.chunks) {
		s.chunks = append(s.chunks, new([ChunkSize]T))
		s.shared = append(s.shared, false)
	} else {
		s.own(c)
	}
	s.chunks[c][s.n%ChunkSize] = v
	s.n++
}

// Truncate shortens the slice to n items, zeroing abandoned positions in
// owned chunks so the GC can reclaim what they referenced. Snaps taken
// earlier keep their full contents.
func (s *Slice[T]) Truncate(n int) {
	if n < 0 || n > s.n {
		panic(fmt.Sprintf("chunked: truncate to %d of %d", n, s.n))
	}
	keep := (n + ChunkSize - 1) / ChunkSize
	for i := keep; i < len(s.chunks); i++ {
		s.chunks[i] = nil
	}
	s.chunks = s.chunks[:keep]
	s.shared = s.shared[:keep]
	if n%ChunkSize != 0 {
		c := keep - 1
		s.own(c)
		var zero T
		for i := n % ChunkSize; i < ChunkSize; i++ {
			s.chunks[c][i] = zero
		}
	}
	s.n = n
}

// Snapshot freezes the current contents in O(chunks): every chunk is marked
// shared and the chunk table is copied. The returned Snap is immutable and
// safe for concurrent readers while the Slice keeps mutating.
func (s *Slice[T]) Snapshot() Snap[T] {
	for i := range s.shared {
		s.shared[i] = true
	}
	return Snap[T]{chunks: append([]*[ChunkSize]T(nil), s.chunks...), n: s.n}
}

// Snap is an immutable snapshot of a Slice.
type Snap[T any] struct {
	chunks []*[ChunkSize]T
	n      int
}

// Len returns the number of items in the snapshot.
func (sn Snap[T]) Len() int { return sn.n }

// At returns item i of the snapshot.
func (sn Snap[T]) At(i int) T {
	if i < 0 || i >= sn.n {
		panic(fmt.Sprintf("chunked: index %d out of range [0, %d)", i, sn.n))
	}
	return sn.chunks[i/ChunkSize][i%ChunkSize]
}
