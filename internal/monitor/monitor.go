// Package monitor is the continuous-query subsystem of the C-PNN engine: it
// maintains standing C-PNN / PNN / constrained-k-NN queries over the durable
// store's change feed and pushes answer updates as batches commit — the
// paper's motivating LBS and sensor scenarios, where object pdfs change
// continuously and clients care about the current answer, made incremental.
//
// The core idea is influence-region pruning. Every evaluation already
// computes a critical distance (the filtering bound f_min, or f_k for k-NN):
// an object whose region stays entirely farther from the query point
// provably cannot change the answer — it can neither join the candidate set
// nor move the filtering bound. The monitor indexes each standing query's
// influence interval [q−r, q+r] in an R-tree and, on every committed batch,
// spatially joins the batch's changed rectangles (old and new) against it.
// Only intersected queries re-evaluate; for everything else the previous
// answer is provably current. Localized updates therefore cost work
// proportional to the queries they can actually affect, not to the number of
// standing queries (O(affected) instead of O(queries × commits)).
//
// Re-evaluation runs on a bounded worker pool that recycles per-worker
// evaluation scratch (core.Scratch — the batch path's candidate buffers,
// subregion tables and fold arenas). Bursts coalesce: a query dirtied by
// several commits evaluates once, against the latest view. Answers are
// canonical JSON in stable-ID terms; a query is pushed to subscribers only
// when its answer actually changed. Slow subscribers are never waited on —
// their stream drops and they receive an explicit lagged event.
package monitor

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/store"
)

// ErrClosed is returned by operations on a closed monitor.
var ErrClosed = errors.New("monitor: closed")

// logger returns the configured structured logger, or a discard logger.
func (m *Monitor) logger() *slog.Logger { return obs.Or(m.cfg.Logger) }

// ErrUnknownMonitor marks operations addressing an unregistered monitor ID.
var ErrUnknownMonitor = errors.New("monitor: unknown monitor id")

// DefaultMaxMonitors caps registered standing queries.
const DefaultMaxMonitors = 65536

// DefaultMaxStateBytes caps the memory retained by per-query evaluation
// states (cached distance pdfs and subregion tables) when
// Config.MaxStateBytes is zero.
const DefaultMaxStateBytes = 64 << 20

// Config tunes a Monitor. Store is required; every other zero value selects
// a sensible default.
type Config struct {
	// Store supplies the change feed and the views to evaluate against.
	Store *store.Store
	// Workers bounds concurrent re-evaluations; 0 means GOMAXPROCS.
	Workers int
	// FeedBuffer is the store-subscription buffer; 0 means
	// store.DefaultWatchBuffer. Overflowing it is safe (the feed delivers a
	// Gap and the monitor re-evaluates everything) but costs pruning.
	FeedBuffer int
	// MaxMonitors caps registered standing queries; 0 means
	// DefaultMaxMonitors.
	MaxMonitors int
	// MaxStateBytes caps the memory retained across all per-query evaluation
	// states; least-recently-evaluated states are dropped when the cap is
	// exceeded (their queries transparently fall back to a full
	// re-derivation on their next triggering commit). 0 means
	// DefaultMaxStateBytes; negative disables the cap.
	MaxStateBytes int64
	// DisableIncremental forces every re-evaluation down the from-scratch
	// path and retains no per-query state — the baseline the benchmark's
	// incremental-vs-scratch comparison runs against.
	DisableIncremental bool
	// Logger receives structured monitor events (evaluation errors); nil
	// discards them.
	Logger *slog.Logger
	// PushLatency, when set, observes commit-to-push latency in seconds:
	// the time from the store commit that dirtied a standing query to the
	// push of its updated answer.
	PushLatency *obs.Histogram
}

// standing is one registered query.
type standing struct {
	id   uint64
	spec Spec

	rect    geom.Rect // influence rect currently indexed
	version uint64    // view version of the last completed evaluation
	body    []byte    // canonical answer at version

	evaluating bool // a worker is evaluating this query right now
	redo       bool // dirtied again while evaluating; requeue on completion

	// pending accumulates the stable IDs changed by the commits that dirtied
	// this query since its last evaluation; full marks the set as
	// non-exhaustive (feed gap, truncation, raced influence-rect growth),
	// forcing the next evaluation to re-derive everything. Both are guarded
	// by the monitor mutex; an evaluating worker owns a snapshot.
	pending map[uint64]int
	full    bool
	// dirtyAt is when the oldest unserviced dirtying commit landed (zero
	// when clean) — the start point of the push-latency measurement.
	dirtyAt time.Time

	// state is the persistent incremental-evaluation state (nil until the
	// first worker evaluation, and while evicted). The owning worker touches
	// it outside the lock during an evaluation; everyone else only under the
	// lock and only when evaluating is false.
	state      *core.EvalState
	stateBytes int64  // last accounted MemBytes share
	lastEval   uint64 // eviction clock (monitor.evalSeq at last evaluation)
}

// State is a read-only snapshot of one standing query.
type State struct {
	// ID is the monitor ID assigned at registration.
	ID uint64
	// Spec is the registered query.
	Spec Spec
	// Version is the view version of the current answer.
	Version uint64
	// Answer is the canonical answer body (JSON) at Version.
	Answer []byte
}

// Stats is a snapshot of the monitor's operational counters.
type Stats struct {
	// Active counts registered standing queries; Subscribers live
	// subscriptions.
	Active, Subscribers int
	// Version is the latest view version the feed loop has consumed.
	Version uint64
	// Deltas counts processed change-feed deltas; Gaps those that arrived as
	// lag gaps (forcing full re-evaluation).
	Deltas, Gaps uint64
	// Affected counts query re-evaluations scheduled by the spatial join;
	// Pruned counts standing queries a delta provably could not affect
	// (skipped entirely). Pruned/(Affected+Pruned) is the paper-style
	// saved-work fraction.
	Affected, Pruned uint64
	// ReEvals counts completed re-evaluations; Pushes those that changed the
	// answer and were fanned out.
	ReEvals, Pushes uint64
	// Dropped counts updates dropped on slow subscribers (each drop run ends
	// in one lagged event).
	Dropped uint64
	// Errors counts failed evaluations and unbuildable views — a non-zero
	// value means some standing answers may be stale until their next
	// triggering commit.
	Errors uint64
	// EarlyExits counts re-evaluations resolved by the incremental early
	// exit: the triggering changes provably could not alter the answer, so
	// no fold was derived and no verifier ran.
	EarlyExits uint64
	// TwoDFallbacks counts 2-D object changes the spatial join skipped.
	// Standing queries are 1-D (their evaluation never reads the view's
	// disks), so the skip is sound — the counter exists so the coverage gap
	// stays visible if 2-D standing queries are ever added.
	TwoDFallbacks uint64
	// IncrementalReused counts candidate folds served from per-query states;
	// IncrementalDerived counts folds actually recomputed. Their ratio is
	// the monitor-side derivation saving.
	IncrementalReused, IncrementalDerived uint64
	// StateBytes is the memory currently retained by per-query evaluation
	// states, StateQueries the number of queries holding one, and
	// StateEvictions the states dropped to respect Config.MaxStateBytes.
	StateBytes     int64
	StateQueries   int
	StateEvictions uint64
}

// Monitor maintains standing queries over a store's change feed. Create one
// with New; it is safe for concurrent use.
type Monitor struct {
	cfg  Config
	st   *store.Store
	feed *store.Sub

	mu      sync.Mutex
	cond    *sync.Cond
	queries map[uint64]*standing
	qix     *rtree.Tree[uint64]
	nextID  uint64
	subs    map[*Subscription]struct{}

	cur     *store.View  // latest view consumed by the feed loop
	curEng  *core.Engine // engine over cur
	feedVer uint64       // cur.Version, for Sync
	dirty   map[uint64]struct{}
	closed  bool

	inflight int // workers currently evaluating

	evalSeq    uint64 // eviction clock, bumped per completed evaluation
	stateBytes int64  // total accounted per-query state memory

	wg sync.WaitGroup

	// counters, guarded by mu (the hot paths already hold it)
	nDeltas, nGaps, nAffected, nPruned, nReEvals, nPushes, nDropped, nErrors uint64
	nEarlyExits, nTwoDFallbacks, nStateEvictions, nIncReused, nIncDerived    uint64
}

// New builds and starts a monitor over the store's change feed.
func New(cfg Config) (*Monitor, error) {
	if cfg.Store == nil {
		return nil, errors.New("monitor: Config.Store is required")
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("monitor: workers %d < 1", cfg.Workers)
	}
	if cfg.MaxMonitors == 0 {
		cfg.MaxMonitors = DefaultMaxMonitors
	}
	if cfg.MaxStateBytes == 0 {
		cfg.MaxStateBytes = DefaultMaxStateBytes
	}
	feed, err := cfg.Store.Watch(cfg.FeedBuffer)
	if err != nil {
		return nil, err
	}
	view := cfg.Store.View()
	eng, err := core.NewEngineWithIndex(view.Dataset, view.Index)
	if err != nil {
		feed.Close()
		return nil, err
	}
	m := &Monitor{
		cfg:     cfg,
		st:      cfg.Store,
		feed:    feed,
		queries: map[uint64]*standing{},
		qix:     rtree.NewDefault[uint64](),
		nextID:  1,
		subs:    map[*Subscription]struct{}{},
		cur:     view,
		curEng:  eng,
		feedVer: view.Version,
		dirty:   map[uint64]struct{}{},
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(1 + cfg.Workers)
	go m.feedLoop()
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m, nil
}

// Close stops the feed loop and workers and closes every subscription.
// Registered queries are discarded. Safe to call more than once.
func (m *Monitor) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.cond.Broadcast()
	for sub := range m.subs {
		delete(m.subs, sub)
		close(sub.ch)
	}
	m.mu.Unlock()
	m.feed.Close() // unblocks the feed loop
	m.wg.Wait()
}

// Register adds a standing query, evaluates it against the current view, and
// returns its initial state. From then on the query re-evaluates whenever a
// committed batch can affect it, and answer changes are pushed to
// subscribers.
func (m *Monitor) Register(spec Spec) (*State, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.queries) >= m.cfg.MaxMonitors {
		m.mu.Unlock()
		return nil, fmt.Errorf("monitor: %d standing queries registered, limit %d",
			m.cfg.MaxMonitors, m.cfg.MaxMonitors)
	}
	view, eng := m.cur, m.curEng
	m.mu.Unlock()

	body, radius, err := Evaluate(view, eng, nil, spec)
	if err != nil {
		return nil, err
	}
	q := &standing{
		spec:    spec,
		rect:    influenceRect(spec.Q, radius),
		version: view.Version,
		body:    body,
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	q.id = m.nextID
	m.nextID++
	m.queries[q.id] = q
	if err := m.qix.Insert(q.rect, q.id); err != nil {
		delete(m.queries, q.id)
		return nil, err
	}
	// A commit may have slipped in between the evaluation above and the
	// index insert; it could not have seen this query in the join, so force
	// one catch-up evaluation.
	if m.cur.Version != view.Version {
		m.dirty[q.id] = struct{}{}
		q.dirtyAt = time.Now()
		m.cond.Broadcast()
	}
	return &State{ID: q.id, Spec: spec, Version: q.version, Answer: q.body}, nil
}

// Unregister removes a standing query, reporting whether it existed.
func (m *Monitor) Unregister(id uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[id]
	if !ok {
		return false
	}
	delete(m.queries, id)
	delete(m.dirty, id)
	m.stateBytes -= q.stateBytes
	q.stateBytes = 0
	m.qix.Delete(q.rect, func(v uint64) bool { return v == id })
	m.cond.Broadcast()
	return true
}

// Get returns a snapshot of one standing query.
func (m *Monitor) Get(id uint64) (*State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[id]
	if !ok {
		return nil, false
	}
	return &State{ID: q.id, Spec: q.spec, Version: q.version, Answer: q.body}, true
}

// List returns a snapshot of every standing query, in ID order.
func (m *Monitor) List() []*State {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*State, 0, len(m.queries))
	for _, q := range m.queries {
		out = append(out, &State{ID: q.id, Spec: q.spec, Version: q.version, Answer: q.body})
	}
	sortStates(out)
	return out
}

func sortStates(out []*State) {
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
}

// Stats returns a snapshot of the operational counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	stateQueries := 0
	for _, q := range m.queries {
		if q.state != nil {
			stateQueries++
		}
	}
	return Stats{
		Active:             len(m.queries),
		Subscribers:        len(m.subs),
		Version:            m.feedVer,
		Deltas:             m.nDeltas,
		Gaps:               m.nGaps,
		Affected:           m.nAffected,
		Pruned:             m.nPruned,
		ReEvals:            m.nReEvals,
		Pushes:             m.nPushes,
		Dropped:            m.nDropped,
		Errors:             m.nErrors,
		EarlyExits:         m.nEarlyExits,
		TwoDFallbacks:      m.nTwoDFallbacks,
		IncrementalReused:  m.nIncReused,
		IncrementalDerived: m.nIncDerived,
		StateBytes:         m.stateBytes,
		StateQueries:       stateQueries,
		StateEvictions:     m.nStateEvictions,
	}
}

// Sync blocks until the monitor is quiescent at (at least) the store's
// current version: the feed loop has consumed every committed delta and no
// query is dirty or mid-evaluation. Tests and benchmarks use it as a commit
// barrier.
func (m *Monitor) Sync(timeout time.Duration) error {
	target := m.st.View().Version
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return ErrClosed
		}
		if m.feedVer >= target && len(m.dirty) == 0 && m.inflight == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("monitor: sync: not quiescent at version %d after %v (feed %d, %d dirty, %d evaluating)",
				target, timeout, m.feedVer, len(m.dirty), m.inflight)
		}
		m.cond.Wait()
	}
}

// feedLoop consumes the store's change feed: for every committed delta it
// advances the current view, joins the changed rectangles against the
// standing-query index, and dirties exactly the queries the batch can
// affect.
func (m *Monitor) feedLoop() {
	defer m.wg.Done()
	for d := range m.feed.C() {
		view := d.View
		if d.Gap {
			// The Gap marker's own view can predate later-dropped deltas;
			// the latest published view is ≥ every drop by the time the
			// marker is read, so resync from there.
			view = m.st.View()
		}
		eng, err := core.NewEngineWithIndex(view.Dataset, view.Index)
		if err != nil {
			// An index/dataset mismatch is an internal invariant violation;
			// fall back to a bulk engine build rather than going dark.
			if eng, err = core.NewEngine(view.Dataset); err != nil {
				m.mu.Lock()
				m.nErrors++
				m.mu.Unlock()
				continue
			}
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return
		}
		if view.Version <= m.feedVer && !d.Gap && !d.Truncated {
			// Already subsumed by an earlier gap resync (normal deltas are
			// strictly increasing, so only a resync can put feedVer ahead);
			// the resync dirtied every query, covering these changes.
			m.cond.Broadcast()
			m.mu.Unlock()
			continue
		}
		if view.Version > m.feedVer {
			m.cur, m.curEng, m.feedVer = view, eng, view.Version
		}
		m.nDeltas++

		var affected int
		if d.Gap || d.Truncated {
			if d.Gap {
				m.nGaps++
			}
			// The changed-ID set is unknowable (gap) or "everything"
			// (truncation): every query re-derives from scratch.
			now := time.Now()
			for id, q := range m.queries {
				m.dirty[id] = struct{}{}
				q.full = true
				if q.dirtyAt.IsZero() {
					q.dirtyAt = now
				}
			}
			affected = len(m.queries)
		} else {
			hit := map[uint64]struct{}{}
			for _, ch := range d.Changes {
				if ch.TwoD {
					// Standing queries are 1-D — evaluation never reads the
					// view's disks — so disk churn provably cannot touch
					// them. Counted so the skip stays visible (see
					// Stats.TwoDFallbacks) if 2-D standing queries land.
					m.nTwoDFallbacks++
					continue
				}
				hint := core.SlotUnknown
				switch {
				case ch.Kind == store.ChangeDelete:
					hint = core.SlotDeleted
				case ch.Slot >= 0:
					hint = ch.Slot
				}
				collect := func(_ geom.Rect, id uint64) bool {
					hit[id] = struct{}{}
					if q := m.queries[id]; q != nil {
						if q.pending == nil {
							q.pending = map[uint64]int{}
						}
						q.pending[ch.ID] = hint
					}
					return true
				}
				if ch.Kind != store.ChangeInsert {
					m.qix.Search(ch.OldRect, collect)
				}
				if ch.Kind != store.ChangeDelete {
					m.qix.Search(ch.NewRect, collect)
				}
			}
			now := time.Now()
			for id := range hit {
				m.dirty[id] = struct{}{}
				if q := m.queries[id]; q != nil && q.dirtyAt.IsZero() {
					q.dirtyAt = now
				}
			}
			affected = len(hit)
		}
		m.nAffected += uint64(affected)
		m.nPruned += uint64(len(m.queries) - affected)
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// worker re-evaluates dirty queries against the latest view, one at a time,
// on a private reusable scratch. Evaluations of one query never overlap: a
// query dirtied mid-evaluation is requeued when its evaluation completes.
func (m *Monitor) worker() {
	defer m.wg.Done()
	sc := core.NewScratch()
	m.mu.Lock()
	for {
		if m.closed {
			m.mu.Unlock()
			return
		}
		var q *standing
		for id := range m.dirty {
			delete(m.dirty, id)
			st, ok := m.queries[id]
			if !ok {
				continue // unregistered while queued
			}
			if st.evaluating {
				st.redo = true
				continue
			}
			q = st
			break
		}
		if q == nil {
			m.cond.Wait()
			continue
		}
		q.evaluating = true
		m.inflight++
		dirtyAt := q.dirtyAt
		q.dirtyAt = time.Time{}
		view, eng, spec := m.cur, m.curEng, q.spec
		// Take ownership of the changed-ID snapshot; changes landing during
		// the evaluation start a fresh set (and set redo).
		pending, full := q.pending, q.full
		q.pending, q.full = nil, false
		incremental := !m.cfg.DisableIncremental
		state := q.state
		if incremental && state == nil {
			state = core.NewEvalState()
			q.state = state
		}
		m.mu.Unlock()

		var body []byte
		var radius float64
		var inc core.IncrementalStats
		var err error
		if incremental {
			body, radius, inc, err = EvaluateIncremental(view, eng, state, spec, pending, full)
		} else {
			body, radius, err = Evaluate(view, eng, sc, spec)
		}

		m.mu.Lock()
		m.inflight--
		m.nReEvals++
		m.nIncReused += uint64(inc.Reused)
		m.nIncDerived += uint64(inc.Derived)
		if err != nil {
			m.nErrors++
			m.logger().Warn("standing-query evaluation failed",
				"monitor_id", q.id, "kind", spec.Kind.String(), "err", err)
			if state != nil {
				state.Invalidate()
			}
			// The pending snapshot is consumed; whatever it said must be
			// re-derived whenever the query next evaluates.
			q.full = true
		}
		q.evaluating = false
		m.evalSeq++
		q.lastEval = m.evalSeq
		live := false
		if _, ok := m.queries[q.id]; ok {
			live = true
			if incremental {
				nb := int64(state.MemBytes())
				m.stateBytes += nb - q.stateBytes
				q.stateBytes = nb
				m.evictStatesLocked()
			}
		}
		// Requeue when the query was dirtied mid-evaluation (redo) — and
		// also when a commit raced this evaluation AND the influence rect
		// grew: the raced commits' spatial joins ran against the
		// pre-evaluation rect, so a change inside the new annulus (outside
		// the old rect) was wrongly pruned. When the new rect stays within
		// the old one the raced joins already covered it (any relevant
		// change hit the old rect and set redo), so no requeue is needed —
		// which keeps sustained write load from degenerating into
		// re-evaluate-per-commit and lets Sync drain.
		rect := q.rect
		if err == nil && !inc.Skipped {
			rect = influenceRect(spec.Q, radius)
		}
		grew := !q.rect.Contains(rect)
		racedGrowth := m.feedVer > view.Version && grew
		if q.redo || racedGrowth {
			q.redo = false
			if live {
				m.dirty[q.id] = struct{}{}
				if q.dirtyAt.IsZero() {
					q.dirtyAt = time.Now()
				}
				if racedGrowth {
					// The wrongly-pruned annulus changes never reached
					// q.pending; only a full re-derivation is sound.
					q.full = true
				}
			}
		}
		if live && err == nil && view.Version >= q.version {
			if rect != q.rect {
				m.qix.Delete(q.rect, func(v uint64) bool { return v == q.id })
				if ierr := m.qix.Insert(rect, q.id); ierr == nil {
					q.rect = rect
				}
			}
			q.version = view.Version
			if inc.Skipped {
				// The previous answer is provably current at this version;
				// nothing to serialize, diff or push.
				m.nEarlyExits++
			} else if !bytes.Equal(body, q.body) {
				q.body = body
				m.nPushes++
				if !dirtyAt.IsZero() {
					m.cfg.PushLatency.Observe(time.Since(dirtyAt).Seconds())
				}
				m.pushLocked(Update{
					ID: q.id, Version: view.Version, Kind: spec.Kind.String(),
					Q: spec.Q, Answer: body,
				})
			}
		}
		m.cond.Broadcast() // wake Sync waiters and idle workers
	}
}

// evictStatesLocked drops least-recently-evaluated per-query states until
// the retained memory fits Config.MaxStateBytes. A state owned by an
// evaluating worker is never touched. Called with the monitor mutex held.
func (m *Monitor) evictStatesLocked() {
	max := m.cfg.MaxStateBytes
	if max < 0 {
		return
	}
	for m.stateBytes > max {
		var victim *standing
		for _, q := range m.queries {
			if q.state == nil || q.evaluating {
				continue
			}
			if victim == nil || q.lastEval < victim.lastEval {
				victim = q
			}
		}
		if victim == nil {
			return
		}
		m.stateBytes -= victim.stateBytes
		victim.state, victim.stateBytes = nil, 0
		m.nStateEvictions++
	}
}
