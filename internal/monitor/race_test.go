package monitor

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/verify"
)

// TestMonitorRace exercises the full subsystem under -race: concurrent
// subscribers coming and going, standing queries registering and
// unregistering, and writers churning objects — all at once. A recording
// store subscription keeps every published view, so each pushed update can
// be checked against a fresh evaluation at exactly its version.
func TestMonitorRace(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Record every view by version before the monitor sees it, so pushed
	// updates can be replayed against their exact snapshot.
	rec, err := s.Watch(4096)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	var viewMu sync.Mutex
	views := map[uint64]*store.View{}
	keepView := func(v *store.View) {
		viewMu.Lock()
		views[v.Version] = v
		viewMu.Unlock()
	}
	keepView(s.View())
	recDone := make(chan struct{})
	go func() {
		defer close(recDone)
		for d := range rec.C() {
			if d.Gap {
				t.Error("recording subscription lagged; raise its buffer")
				return
			}
			keepView(d.View)
		}
	}()

	var ops []store.Op
	for i := 0; i < 40; i++ {
		lo := float64(i * 50)
		ops = append(ops, store.InsertObject(pdf.MustUniform(lo, lo+20)))
	}
	res, err := s.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	ids := res.IDs

	m, err := New(Config{Store: s})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	specs := make([]Spec, 8)
	for i := range specs {
		q := float64(i * 250)
		switch i % 3 {
		case 0:
			specs[i] = Spec{Kind: KindCPNN, Q: q, Constraint: verify.Constraint{P: 0.3, Delta: 0.01}}
		case 1:
			specs[i] = Spec{Kind: KindPNN, Q: q}
		default:
			specs[i] = Spec{Kind: KindKNN, Q: q,
				Constraint: verify.Constraint{P: 0.4, Delta: 0.05}, K: 2, Samples: 200, Seed: 9}
		}
	}
	specByID := sync.Map{}
	for _, sp := range specs {
		st, err := m.Register(sp)
		if err != nil {
			t.Fatal(err)
		}
		specByID.Store(st.ID, sp)
	}

	var wgSubs, wg sync.WaitGroup

	// Subscribers: drain events, verifying every update against a fresh
	// evaluation at the update's version. They run until their subscription
	// is closed after the writers settle.
	var subs []*Subscription
	for w := 0; w < 3; w++ {
		sub, err := m.Subscribe(nil, 4096)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
		wgSubs.Add(1)
		go func(sub *Subscription) {
			defer wgSubs.Done()
			for ev := range sub.C() {
				if ev.Type != EventUpdate {
					continue
				}
				spAny, ok := specByID.Load(ev.Update.ID)
				if !ok {
					continue
				}
				// The recorder goroutine may still be behind the monitor's
				// push; wait briefly for the version's view to land.
				var v *store.View
				for i := 0; i < 400 && v == nil; i++ {
					viewMu.Lock()
					v = views[ev.Update.Version]
					viewMu.Unlock()
					if v == nil {
						time.Sleep(5 * time.Millisecond)
					}
				}
				if v == nil {
					t.Errorf("no recorded view for version %d", ev.Update.Version)
					continue
				}
				fresh, _, err := Evaluate(v, nil, nil, spAny.(Spec))
				if err != nil {
					t.Errorf("fresh evaluation: %v", err)
					continue
				}
				if !bytes.Equal(fresh, ev.Update.Answer) {
					t.Errorf("monitor %d at version %d: pushed %s, fresh %s",
						ev.Update.ID, ev.Update.Version, ev.Update.Answer, fresh)
				}
			}
		}(sub)
	}

	// Churner goroutines: move objects around (writes serialize in the
	// store's committer; concurrency exercises group commit + feed fan-out).
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[rng.Intn(len(ids))]
				lo := rng.Float64() * 2000
				if _, err := s.Apply([]store.Op{
					store.UpdateObject(id, pdf.MustUniform(lo, lo+5+rng.Float64()*20)),
				}); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(int64(w) + 100)
	}

	// Register/unregister churn concurrent with everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 30; i++ {
			st, err := m.Register(Spec{Kind: KindPNN, Q: rng.Float64() * 2000})
			if err != nil {
				t.Errorf("register: %v", err)
				return
			}
			specByID.Store(st.ID, st.Spec)
			if i%2 == 0 {
				specByID.Delete(st.ID)
				m.Unregister(st.ID)
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err := m.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		sub.Close()
	}
	wgSubs.Wait()

	// Final oracle sweep at the settled version.
	view := s.View()
	for _, st := range m.List() {
		fresh, _, err := Evaluate(view, nil, nil, st.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(st.Answer, fresh) {
			t.Fatalf("monitor %d settled stale: %s != %s", st.ID, st.Answer, fresh)
		}
	}
	rec.Close()
	<-recDone
}
