package monitor

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/verify"
)

const syncTimeout = 10 * time.Second

func openStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// seedObjects commits a small, well-separated 1-D dataset and returns the
// assigned stable IDs.
func seedObjects(t *testing.T, s *store.Store, lohi ...float64) []uint64 {
	t.Helper()
	var ops []store.Op
	for i := 0; i+1 < len(lohi); i += 2 {
		ops = append(ops, store.InsertObject(pdf.MustUniform(lohi[i], lohi[i+1])))
	}
	res, err := s.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	return res.IDs
}

func newMonitor(t *testing.T, s *store.Store) *Monitor {
	t.Helper()
	m, err := New(Config{Store: s, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func cpnnSpec(q float64) Spec {
	return Spec{Kind: KindCPNN, Q: q, Constraint: verify.Constraint{P: 0.3, Delta: 0.01}}
}

// TestRegisterInitialAnswer: registration returns the same canonical body a
// direct evaluation produces, and Get mirrors it.
func TestRegisterInitialAnswer(t *testing.T) {
	s := openStore(t)
	seedObjects(t, s, 0, 10, 5, 15, 100, 110)
	m := newMonitor(t, s)

	st, err := m.Register(cpnnSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, err := Evaluate(s.View(), nil, nil, cpnnSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if string(st.Answer) != string(fresh) {
		t.Fatalf("initial answer %s != fresh %s", st.Answer, fresh)
	}
	if st.Version != s.View().Version {
		t.Fatalf("initial version %d != store %d", st.Version, s.View().Version)
	}
	got, ok := m.Get(st.ID)
	if !ok || string(got.Answer) != string(fresh) {
		t.Fatalf("Get mismatch: %v %s", ok, got.Answer)
	}
	if n := len(m.List()); n != 1 {
		t.Fatalf("List holds %d queries, want 1", n)
	}

	// Invalid specs are rejected.
	if _, err := m.Register(Spec{Kind: KindCPNN, Q: 1}); err == nil {
		t.Fatal("zero constraint should be rejected")
	}
	if _, err := m.Register(Spec{Kind: KindKNN, Q: 1, Constraint: verify.Constraint{P: 0.5}}); err == nil {
		t.Fatal("k-NN without K should be rejected")
	}
}

// TestPushOnRelevantChange: a change inside the influence region triggers
// re-evaluation and, when the answer changes, exactly one pushed update that
// matches a fresh evaluation.
func TestPushOnRelevantChange(t *testing.T) {
	s := openStore(t)
	ids := seedObjects(t, s, 0, 10, 5, 15, 1000, 1010)
	m := newMonitor(t, s)

	st, err := m.Register(cpnnSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe(nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Move an in-region object far away: the candidate set shrinks.
	if _, err := s.Apply([]store.Op{store.UpdateObject(ids[1], pdf.MustUniform(2000, 2010))}); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.C():
		if ev.Type != EventUpdate || ev.Update.ID != st.ID {
			t.Fatalf("event = %+v", ev)
		}
		fresh, _, err := Evaluate(s.View(), nil, nil, cpnnSpec(7))
		if err != nil {
			t.Fatal(err)
		}
		if string(ev.Update.Answer) != string(fresh) {
			t.Fatalf("pushed %s != fresh %s", ev.Update.Answer, fresh)
		}
		if ev.Update.Version != s.View().Version {
			t.Fatalf("pushed version %d != %d", ev.Update.Version, s.View().Version)
		}
	default:
		t.Fatal("expected a pushed update")
	}
	if got := m.Stats(); got.ReEvals == 0 || got.Pushes != 1 {
		t.Fatalf("stats = %+v, want ReEvals>0 Pushes=1", got)
	}
}

// TestPruningSkipsUnrelatedChanges: churn far outside every influence region
// must not re-evaluate anything, yet the stored answers stay correct.
func TestPruningSkipsUnrelatedChanges(t *testing.T) {
	s := openStore(t)
	seedObjects(t, s, 0, 10, 5, 15, 5000, 5010)
	m := newMonitor(t, s)

	if _, err := m.Register(cpnnSpec(7)); err != nil {
		t.Fatal(err)
	}
	base := m.Stats()

	// Insert/update/delete activity clustered around x=9000, far beyond the
	// query's critical distance (~15).
	res, err := s.Apply([]store.Op{store.InsertObject(pdf.MustUniform(9000, 9010))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]store.Op{store.UpdateObject(res.IDs[0], pdf.MustUniform(9100, 9110))}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]store.Op{store.Delete(res.IDs[0])}); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}
	got := m.Stats()
	if got.ReEvals != base.ReEvals {
		t.Fatalf("far-away churn re-evaluated: %+v", got)
	}
	if got.Pruned != base.Pruned+3 {
		t.Fatalf("pruned = %d, want %d", got.Pruned, base.Pruned+3)
	}
	// The pruned answer is still the correct answer at the latest version.
	st := m.List()[0]
	fresh, _, err := Evaluate(s.View(), nil, nil, st.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(st.Answer) != string(fresh) {
		t.Fatalf("pruned answer %s != fresh %s", st.Answer, fresh)
	}
}

// TestTruncationReevaluatesAll: a dataset reload dirties every standing
// query.
func TestTruncationReevaluatesAll(t *testing.T) {
	s := openStore(t)
	seedObjects(t, s, 0, 10, 5, 15)
	m := newMonitor(t, s)
	if _, err := m.Register(cpnnSpec(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(cpnnSpec(12)); err != nil {
		t.Fatal(err)
	}
	base := m.Stats()
	if _, err := s.Apply([]store.Op{store.Truncate(), store.InsertObject(pdf.MustUniform(6, 8))}); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}
	got := m.Stats()
	if got.ReEvals < base.ReEvals+2 {
		t.Fatalf("truncation re-evaluated %d queries, want 2", got.ReEvals-base.ReEvals)
	}
	for _, st := range m.List() {
		fresh, _, err := Evaluate(s.View(), nil, nil, st.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if string(st.Answer) != string(fresh) {
			t.Fatalf("monitor %d: %s != fresh %s", st.ID, st.Answer, fresh)
		}
	}
}

// TestKNNUnderfilledIsUnbounded: with fewer than K objects the influence
// region is unbounded — an insert arbitrarily far away must still trigger
// re-evaluation (it joins the k-NN set with certainty).
func TestKNNUnderfilledIsUnbounded(t *testing.T) {
	s := openStore(t)
	seedObjects(t, s, 0, 10)
	m := newMonitor(t, s)
	spec := Spec{Kind: KindKNN, Q: 5, Constraint: verify.Constraint{P: 0.5, Delta: 0.05},
		K: 3, Samples: 500, Seed: 1}
	st, err := m.Register(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]store.Op{store.InsertObject(pdf.MustUniform(90000, 90010))}); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Get(st.ID)
	fresh, _, err := Evaluate(s.View(), nil, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Answer) != string(fresh) {
		t.Fatalf("underfilled k-NN missed the far insert: %s != %s", got.Answer, fresh)
	}
	var parsed struct {
		Answers []struct {
			ID uint64 `json:"id"`
		} `json:"answers"`
	}
	if err := json.Unmarshal(got.Answer, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Answers) != 2 {
		t.Fatalf("answer %s, want both objects certain members", got.Answer)
	}
}

// TestSubscriptionFilteringAndLag: id-filtered subscriptions only see their
// monitors; a subscriber that never drains gets a lagged event once room
// frees up.
func TestSubscriptionFilteringAndLag(t *testing.T) {
	s := openStore(t)
	ids := seedObjects(t, s, 0, 10, 5, 15, 30, 40)
	m := newMonitor(t, s)

	a, err := m.Register(cpnnSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Register(cpnnSpec(35))
	if err != nil {
		t.Fatal(err)
	}
	subB, err := m.Subscribe([]uint64{b.ID}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer subB.Close()
	// Buffer of 1: the second push must drop and surface as lagged.
	subAll, err := m.Subscribe(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer subAll.Close()

	// Three successive moves of object 0 change monitor A's answer each time.
	for i, lo := range []float64{3, 18, 2} {
		if _, err := s.Apply([]store.Op{store.UpdateObject(ids[0], pdf.MustUniform(lo, lo+2))}); err != nil {
			t.Fatal(err)
		}
		if err := m.Sync(syncTimeout); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}

	select {
	case ev := <-subB.C():
		t.Fatalf("filtered subscription got %+v for monitor %d", ev, a.ID)
	default:
	}
	ev1 := <-subAll.C()
	if ev1.Type != EventUpdate || ev1.Update.ID != a.ID {
		t.Fatalf("first event = %+v", ev1)
	}
	ev2 := <-subAll.C()
	if ev2.Type != EventLagged {
		t.Fatalf("second event = %+v, want lagged", ev2)
	}
	if m.Stats().Dropped == 0 {
		t.Fatal("expected dropped updates on the full subscription")
	}
}

// TestUnregisterStopsUpdates: an unregistered query neither evaluates nor
// pushes again.
func TestUnregisterStopsUpdates(t *testing.T) {
	s := openStore(t)
	ids := seedObjects(t, s, 0, 10, 5, 15)
	m := newMonitor(t, s)
	st, err := m.Register(cpnnSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Unregister(st.ID) {
		t.Fatal("unregister failed")
	}
	if m.Unregister(st.ID) {
		t.Fatal("double unregister succeeded")
	}
	base := m.Stats()
	if _, err := s.Apply([]store.Op{store.UpdateObject(ids[0], pdf.MustUniform(2, 12))}); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats(); got.ReEvals != base.ReEvals || got.Active != 0 {
		t.Fatalf("unregistered query still active: %+v", got)
	}
}

// TestMonitorClose: Close is idempotent, closes subscriptions, and further
// calls error cleanly.
func TestMonitorClose(t *testing.T) {
	s := openStore(t)
	seedObjects(t, s, 0, 10)
	m, err := New(Config{Store: s})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close()
	if _, ok := <-sub.C(); ok {
		t.Fatal("subscription channel should close with the monitor")
	}
	if _, err := m.Register(cpnnSpec(5)); err != ErrClosed {
		t.Fatalf("Register after close: %v, want ErrClosed", err)
	}
	if _, err := m.Subscribe(nil, 4); err != ErrClosed {
		t.Fatalf("Subscribe after close: %v, want ErrClosed", err)
	}
	if err := m.Sync(time.Second); err != ErrClosed {
		t.Fatalf("Sync after close: %v, want ErrClosed", err)
	}
}

// TestEvaluateKinds smoke-tests the three canonical bodies.
func TestEvaluateKinds(t *testing.T) {
	s := openStore(t)
	seedObjects(t, s, 0, 10, 5, 15, 8, 20)
	v := s.View()
	for _, spec := range []Spec{
		cpnnSpec(9),
		{Kind: KindPNN, Q: 9},
		{Kind: KindKNN, Q: 9, Constraint: verify.Constraint{P: 0.2, Delta: 0.05}, K: 2, Samples: 500, Seed: 4},
	} {
		body, radius, err := Evaluate(v, nil, nil, spec)
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		if len(body) == 0 || radius <= 0 {
			t.Fatalf("%v: body=%s radius=%g", spec.Kind, body, radius)
		}
		if !json.Valid(body) {
			t.Fatalf("%v: invalid JSON %s", spec.Kind, body)
		}
		// Deterministic: a second evaluation is byte-identical.
		again, _, err := Evaluate(v, nil, core.NewScratch(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if string(body) != string(again) {
			t.Fatalf("%v: nondeterministic body", spec.Kind)
		}
	}
}
