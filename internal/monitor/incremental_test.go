package monitor

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/verify"
)

// specsAt returns one spec of each kind anchored near q, for equivalence
// sweeps that should cover every incremental code path.
func specsAt(q float64) []Spec {
	return []Spec{
		{Kind: KindCPNN, Q: q, Constraint: verify.Constraint{P: 0.3, Delta: 0.01}},
		{Kind: KindPNN, Q: q},
		{Kind: KindKNN, Q: q, Constraint: verify.Constraint{P: 0.4, Delta: 0.05},
			K: 2, Samples: 150, Seed: 11},
	}
}

// TestEvaluateIncrementalMatchesEvaluate drives one persistent EvalState per
// spec through a deterministic commit sequence and checks, at every version,
// that the incremental body is byte-identical to a fresh Evaluate — or, when
// the early exit fires, that the fresh body is byte-identical to the previous
// one (the skip claimed exactly that).
func TestEvaluateIncrementalMatchesEvaluate(t *testing.T) {
	s := openStore(t)
	ids := seedObjects(t, s, 0, 10, 5, 15, 30, 40, 200, 210, 500, 510)
	rng := rand.New(rand.NewSource(42))

	specs := specsAt(7)
	states := make([]*core.EvalState, len(specs))
	prev := make([][]byte, len(specs))
	for i, sp := range specs {
		states[i] = core.NewEvalState()
		var err error
		prev[i], _, _, err = EvaluateIncremental(s.View(), nil, states[i], sp, nil, true)
		if err != nil {
			t.Fatal(err)
		}
	}

	var skips, patches int
	for step := 0; step < 40; step++ {
		var ops []store.Op
		changed := map[uint64]int{}
		switch step % 4 {
		case 0: // nudge an existing object
			id := ids[rng.Intn(len(ids))]
			lo := rng.Float64() * 60
			ops = append(ops, store.UpdateObject(id, pdf.MustUniform(lo, lo+5)))
			changed[id] = core.SlotUnknown
		case 1: // move an object far away (possible departure)
			id := ids[rng.Intn(len(ids))]
			lo := 400 + rng.Float64()*200
			ops = append(ops, store.UpdateObject(id, pdf.MustUniform(lo, lo+8)))
			changed[id] = core.SlotUnknown
		case 2: // insert near the query point (possible arrival)
			lo := rng.Float64() * 30
			ops = append(ops, store.InsertObject(pdf.MustUniform(lo, lo+6)))
		default: // touch two objects at once (multi-change commit)
			a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			la, lb := rng.Float64()*100, rng.Float64()*100
			ops = append(ops,
				store.UpdateObject(a, pdf.MustUniform(la, la+4)),
				store.UpdateObject(b, pdf.MustUniform(lb, lb+4)))
			changed[a], changed[b] = core.SlotUnknown, core.SlotUnknown
		}
		res, err := s.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range res.IDs {
			changed[id] = core.SlotUnknown
		}

		view := s.View()
		for i, sp := range specs {
			fresh, _, err := Evaluate(view, nil, nil, sp)
			if err != nil {
				t.Fatal(err)
			}
			body, _, inc, err := EvaluateIncremental(view, nil, states[i], sp, changed, false)
			if err != nil {
				t.Fatalf("step %d spec %d: %v", step, i, err)
			}
			if inc.Skipped {
				skips++
				if !bytes.Equal(fresh, prev[i]) {
					t.Fatalf("step %d spec %d: early exit but answer changed: %s != %s",
						step, i, fresh, prev[i])
				}
			} else {
				if !bytes.Equal(fresh, body) {
					t.Fatalf("step %d spec %d: incremental %s != fresh %s", step, i, body, fresh)
				}
				prev[i] = body
			}
			if inc.Patched {
				patches++
			}
		}
	}
	if patches == 0 {
		t.Error("single-candidate patch path never fired over 40 steps")
	}
	_ = skips // skips are sequence-dependent; correctness above is what matters
}

// TestMonitorEarlyExit: a commit that moves an object through the influence
// region and back out in one batch dirties the query but provably cannot
// change its answer — the worker must take the early exit, push nothing, and
// still advance the query's version.
func TestMonitorEarlyExit(t *testing.T) {
	s := openStore(t)
	ids := seedObjects(t, s, 0, 10, 5, 15, 500, 510)
	far := ids[2]
	m := newMonitor(t, s)

	st, err := m.Register(cpnnSpec(7))
	if err != nil {
		t.Fatal(err)
	}

	// First triggering commit populates the per-query evaluation state (the
	// registration evaluation runs the plain path and caches nothing).
	if _, err := s.Apply([]store.Op{store.UpdateObject(ids[0], pdf.MustUniform(1, 11))}); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	if before.EarlyExits != 0 {
		t.Fatalf("unexpected early exits before the no-op commit: %d", before.EarlyExits)
	}

	// One batch: far object dips inside the influence region, then returns to
	// exactly where it was. The join dirties the query; the settled state is
	// unchanged, so the verifier must not run.
	if _, err := s.Apply([]store.Op{
		store.UpdateObject(far, pdf.MustUniform(5, 6)),
		store.UpdateObject(far, pdf.MustUniform(500, 510)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}

	after := m.Stats()
	if after.EarlyExits != before.EarlyExits+1 {
		t.Errorf("EarlyExits = %d, want %d", after.EarlyExits, before.EarlyExits+1)
	}
	if after.Pushes != before.Pushes {
		t.Errorf("early exit pushed an update: pushes %d -> %d", before.Pushes, after.Pushes)
	}
	got, ok := m.Get(st.ID)
	if !ok {
		t.Fatal("query vanished")
	}
	if got.Version != s.View().Version {
		t.Errorf("version not advanced on early exit: %d != %d", got.Version, s.View().Version)
	}
	fresh, _, err := Evaluate(s.View(), nil, nil, st.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Answer, fresh) {
		t.Errorf("answer stale after early exit: %s != %s", got.Answer, fresh)
	}
}

// TestStateEvictionUnderCap: with a 1-byte state budget every evaluation's
// state is immediately evicted, the accounting returns to zero, and queries
// transparently fall back to full re-derivation — answers stay correct.
func TestStateEvictionUnderCap(t *testing.T) {
	s := openStore(t)
	ids := seedObjects(t, s, 0, 10, 5, 15, 20, 30)
	m, err := New(Config{Store: s, Workers: 2, MaxStateBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	if _, err := m.Register(cpnnSpec(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(cpnnSpec(25)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		lo := float64(i)
		if _, err := s.Apply([]store.Op{
			store.UpdateObject(ids[i%len(ids)], pdf.MustUniform(lo, lo+12)),
		}); err != nil {
			t.Fatal(err)
		}
		if err := m.Sync(syncTimeout); err != nil {
			t.Fatal(err)
		}
	}

	st := m.Stats()
	if st.StateEvictions == 0 {
		t.Error("no state evictions under a 1-byte cap")
	}
	if st.StateBytes != 0 || st.StateQueries != 0 {
		t.Errorf("states retained past the cap: %d bytes over %d queries",
			st.StateBytes, st.StateQueries)
	}
	view := s.View()
	for _, q := range m.List() {
		fresh, _, err := Evaluate(view, nil, nil, q.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(q.Answer, fresh) {
			t.Errorf("monitor %d wrong under eviction churn: %s != %s", q.ID, q.Answer, fresh)
		}
	}
}

// TestTwoDFallbackCounter: disk (2-D) churn cannot affect 1-D standing
// queries; the feed loop skips it without dirtying anyone and counts the skip.
func TestTwoDFallbackCounter(t *testing.T) {
	s := openStore(t)
	seedObjects(t, s, 0, 10, 5, 15)
	m := newMonitor(t, s)
	st, err := m.Register(cpnnSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	before := m.Stats()

	res, err := s.Apply([]store.Op{
		store.InsertDisk(geom.Circle{Center: geom.Point{X: 7, Y: 0}, Radius: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]store.Op{store.Delete(res.IDs[0])}); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}

	after := m.Stats()
	if after.TwoDFallbacks != before.TwoDFallbacks+2 {
		t.Errorf("TwoDFallbacks = %d, want %d", after.TwoDFallbacks, before.TwoDFallbacks+2)
	}
	if after.ReEvals != before.ReEvals {
		t.Errorf("2-D churn triggered re-evaluations: %d -> %d", before.ReEvals, after.ReEvals)
	}
	got, _ := m.Get(st.ID)
	fresh, _, err := Evaluate(s.View(), nil, nil, st.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Answer, fresh) {
		t.Errorf("answer wrong after 2-D churn: %s != %s", got.Answer, fresh)
	}
}

// TestDisableIncrementalBaseline: the scratch-path baseline retains no state
// and produces exactly the bodies the incremental monitor settles on.
func TestDisableIncrementalBaseline(t *testing.T) {
	s := openStore(t)
	ids := seedObjects(t, s, 0, 10, 5, 15, 30, 40)
	inc := newMonitor(t, s)
	base, err := New(Config{Store: s, Workers: 2, DisableIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(base.Close)

	var incIDs, baseIDs []uint64
	for _, sp := range specsAt(7) {
		a, err := inc.Register(sp)
		if err != nil {
			t.Fatal(err)
		}
		b, err := base.Register(sp)
		if err != nil {
			t.Fatal(err)
		}
		incIDs, baseIDs = append(incIDs, a.ID), append(baseIDs, b.ID)
	}

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		lo := rng.Float64() * 50
		if _, err := s.Apply([]store.Op{
			store.UpdateObject(ids[rng.Intn(len(ids))], pdf.MustUniform(lo, lo+7)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}
	if err := base.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}

	for i := range incIDs {
		a, _ := inc.Get(incIDs[i])
		b, _ := base.Get(baseIDs[i])
		if !bytes.Equal(a.Answer, b.Answer) {
			t.Errorf("spec %d: incremental %s != baseline %s", i, a.Answer, b.Answer)
		}
	}
	bst := base.Stats()
	if bst.StateQueries != 0 || bst.StateBytes != 0 {
		t.Errorf("baseline retained state: %d queries, %d bytes", bst.StateQueries, bst.StateBytes)
	}
	if bst.IncrementalReused != 0 || bst.EarlyExits != 0 {
		t.Errorf("baseline took incremental paths: reused %d, early exits %d",
			bst.IncrementalReused, bst.EarlyExits)
	}
}

// TestMonitorEvictionChurnRace hammers a tiny state budget with concurrent
// writers and registration churn, so evictions race evaluations; run under
// -race this pins down the state-ownership discipline. Ends with an oracle
// sweep: every settled answer must match a fresh evaluation.
func TestMonitorEvictionChurnRace(t *testing.T) {
	s := openStore(t)
	ids := seedObjects(t, s,
		0, 10, 40, 50, 80, 90, 120, 130, 160, 170, 200, 210, 240, 250, 280, 290)
	m, err := New(Config{Store: s, Workers: 4, MaxStateBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	for i := 0; i < 6; i++ {
		if _, err := m.Register(cpnnSpec(float64(i * 50))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				id := ids[rng.Intn(len(ids))]
				lo := rng.Float64() * 300
				if _, err := s.Apply([]store.Op{
					store.UpdateObject(id, pdf.MustUniform(lo, lo+10)),
				}); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(int64(w) + 17)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(23))
		for i := 0; i < 20; i++ {
			st, err := m.Register(cpnnSpec(rng.Float64() * 300))
			if err != nil {
				t.Errorf("register: %v", err)
				return
			}
			if i%2 == 0 {
				m.Unregister(st.ID)
			}
		}
	}()
	wg.Wait()
	if err := m.Sync(syncTimeout); err != nil {
		t.Fatal(err)
	}

	view := s.View()
	for _, q := range m.List() {
		fresh, _, err := Evaluate(view, nil, nil, q.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(q.Answer, fresh) {
			t.Fatalf("monitor %d settled stale: %s != %s", q.ID, q.Answer, fresh)
		}
	}
	if st := m.Stats(); st.StateEvictions == 0 {
		t.Log("note: no evictions fired this run (budget not exceeded)")
	}
}
