package monitor

import "encoding/json"

// Update is one pushed answer change.
type Update struct {
	// ID is the standing query's monitor ID.
	ID uint64 `json:"id"`
	// Version is the view version the answer was evaluated at.
	Version uint64 `json:"version"`
	// Kind is the query kind ("cpnn", "pnn", "knn").
	Kind string `json:"kind"`
	// Q is the standing query point.
	Q float64 `json:"q"`
	// Answer is the canonical answer body at Version.
	Answer json.RawMessage `json:"answer"`
}

// EventType labels a subscription event.
type EventType uint8

const (
	// EventUpdate carries a changed answer.
	EventUpdate EventType = iota + 1
	// EventLagged reports that updates were dropped because the subscriber
	// fell behind; resynchronize via Monitor.Get/List.
	EventLagged
)

// Event is one subscription delivery.
type Event struct {
	Type EventType
	// Update is valid for EventUpdate.
	Update Update
}

// DefaultSubscriptionBuffer is the per-subscription event buffer used when
// Subscribe is called with a non-positive buffer.
const DefaultSubscriptionBuffer = 64

// Subscription is one consumer of pushed updates. Receive events from C;
// Close releases it. A subscription that cannot drain its buffer never
// blocks the monitor: pending updates are dropped and one EventLagged is
// delivered as soon as the buffer has room.
type Subscription struct {
	m   *Monitor
	ids map[uint64]struct{} // nil = all standing queries
	ch  chan Event

	lagged bool // guarded by m.mu
}

// C returns the event channel. It is closed by Close and when the monitor
// closes.
func (s *Subscription) C() <-chan Event { return s.ch }

// Close cancels the subscription and closes its channel. Idempotent.
func (s *Subscription) Close() {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	if _, ok := s.m.subs[s]; ok {
		delete(s.m.subs, s)
		close(s.ch)
	}
}

// Subscribe registers a consumer for pushed updates. ids narrows delivery to
// those monitor IDs; empty/nil subscribes to every standing query (including
// ones registered later). buffer bounds the event backlog; non-positive
// means DefaultSubscriptionBuffer, and buffers below 2 round up (one slot is
// reserved for the in-stream lagged marker).
func (m *Monitor) Subscribe(ids []uint64, buffer int) (*Subscription, error) {
	if buffer <= 0 {
		buffer = DefaultSubscriptionBuffer
	}
	if buffer < 2 {
		buffer = 2
	}
	sub := &Subscription{m: m, ch: make(chan Event, buffer)}
	if len(ids) > 0 {
		sub.ids = make(map[uint64]struct{}, len(ids))
		for _, id := range ids {
			sub.ids[id] = struct{}{}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.subs[sub] = struct{}{}
	return sub, nil
}

// pushLocked fans an update out to every matching subscription; m.mu held.
// Delivery never blocks the monitor. The last buffer slot is reserved for
// the lagged marker: when a subscription is about to fill, the update is
// dropped and one EventLagged lands in-stream instead, so the consumer
// learns it fell behind as soon as it drains its backlog — not only when the
// next push happens to arrive. Further updates stay dropped until the
// consumer has fully caught up (empty buffer). This mirrors the store
// feed's protocol (store.(*Store).publish) — the marker semantics differ
// (a bare lag flag here, a view-carrying Gap delta there), so keep the two
// in sync when touching either.
//
// The m.mu-serialized sender plus a drain-only consumer make the len/cap
// checks race-free in the conservative direction: len can only shrink under
// us, so a send this function decides on never blocks.
func (m *Monitor) pushLocked(u Update) {
	for sub := range m.subs {
		if sub.ids != nil {
			if _, ok := sub.ids[u.ID]; !ok {
				continue
			}
		}
		if sub.lagged {
			if len(sub.ch) > 0 {
				m.nDropped++
				continue // still draining the pre-lag backlog
			}
			sub.lagged = false // caught up; resume delivery
		}
		if len(sub.ch) < cap(sub.ch)-1 {
			sub.ch <- Event{Type: EventUpdate, Update: u}
		} else {
			sub.ch <- Event{Type: EventLagged} // the reserved slot
			sub.lagged = true
			m.nDropped++
		}
	}
}
