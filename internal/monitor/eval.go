package monitor

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/store"
	"repro/internal/verify"
)

// Kind selects the standing-query flavor.
type Kind uint8

const (
	// KindCPNN is a standing constrained PNN (threshold + tolerance).
	KindCPNN Kind = iota + 1
	// KindPNN is a standing unconstrained PNN (exact probabilities).
	KindPNN
	// KindKNN is a standing constrained k-NN (sampling-based).
	KindKNN
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCPNN:
		return "cpnn"
	case KindPNN:
		return "pnn"
	case KindKNN:
		return "knn"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind parses the wire name of a query kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "cpnn":
		return KindCPNN, nil
	case "pnn":
		return KindPNN, nil
	case "knn":
		return KindKNN, nil
	default:
		return 0, fmt.Errorf("monitor: unknown query kind %q (cpnn, pnn, knn)", s)
	}
}

// Spec describes one standing query. Constraint applies to KindCPNN and
// KindKNN; Strategy to KindCPNN; K/Samples/Seed to KindKNN.
type Spec struct {
	Kind       Kind
	Q          float64
	Constraint verify.Constraint
	Strategy   core.Strategy
	K          int
	Samples    int
	Seed       int64
}

// Validate rejects malformed specs before they are registered.
func (sp Spec) Validate() error {
	if math.IsNaN(sp.Q) || math.IsInf(sp.Q, 0) {
		return fmt.Errorf("monitor: non-finite query point %g", sp.Q)
	}
	switch sp.Kind {
	case KindCPNN, KindKNN:
		if err := sp.Constraint.Validate(); err != nil {
			return err
		}
		if sp.Kind == KindKNN {
			if sp.K < 1 {
				return fmt.Errorf("monitor: k = %d < 1", sp.K)
			}
			if sp.Samples < 0 {
				return fmt.Errorf("monitor: samples = %d < 0", sp.Samples)
			}
		}
	case KindPNN:
	default:
		return fmt.Errorf("monitor: unknown query kind %d", sp.Kind)
	}
	return nil
}

// maxCoord bounds the synthetic influence interval that stands in for an
// unbounded radius; it stays finite so R-tree arithmetic (areas, margins,
// enlargement deltas) never overflows into Inf−Inf = NaN.
const maxCoord = math.MaxFloat64 / 4

// answerJSON is one classified object of a canonical answer body, in
// stable-ID terms.
type answerJSON struct {
	ID     uint64  `json:"id"`
	L      float64 `json:"l"`
	U      float64 `json:"u"`
	Status string  `json:"status"`
}

// probJSON is one entry of a PNN answer body.
type probJSON struct {
	ID uint64  `json:"id"`
	P  float64 `json:"p"`
}

// round9 rounds to 9 decimal places. Answer bodies are compared byte-wise to
// decide whether to push; probability sums and products inside the engine
// run in dense-slot order, so an unrelated delete (which reshuffles slots)
// can perturb the last couple of float bits of an otherwise-unchanged
// answer. Quantizing far below any meaningful precision (the paper's Δ is
// 0.01) and far above the ~1e-16 relative jitter makes "unchanged" robust.
func round9(v float64) float64 { return math.Round(v*1e9) / 1e9 }

// Evaluate computes the canonical answer body of a spec against one MVCC
// view, plus the query's influence radius: the critical distance within
// which a changed object can possibly alter the answer (math.Inf(1) when
// every change can, e.g. on an empty dataset). The body is a deterministic
// function of the view's stable-ID object set — evaluating the same spec at
// any view holding the same objects yields identical bytes.
//
// eng must be an engine over view's dataset and index (pass nil to build
// one); sc optionally recycles evaluation scratch.
func Evaluate(view *store.View, eng *core.Engine, sc *core.Scratch, spec Spec) (body []byte, radius float64, err error) {
	if eng == nil {
		eng, err = core.NewEngineWithIndex(view.Dataset, view.Index)
		if err != nil {
			return nil, 0, err
		}
	}
	n := view.Dataset.Len()
	switch spec.Kind {
	case KindCPNN:
		res, err := eng.CPNNScratch(spec.Q, spec.Constraint, core.Options{Strategy: spec.Strategy}, sc)
		if err != nil {
			return nil, 0, err
		}
		body, err = marshalCPNN(view, res.Answers)
		return body, boundedRadius(n > 0, res.Stats.FMin), err

	case KindPNN:
		probs, st, err := eng.PNN(spec.Q, core.Options{})
		if err != nil {
			return nil, 0, err
		}
		body, err = marshalPNN(view, probs)
		return body, boundedRadius(n > 0, st.FMin), err

	case KindKNN:
		answers, st, err := eng.CKNN(spec.Q, spec.Constraint, core.KNNOptions{
			K: spec.K, Samples: spec.Samples, Seed: spec.Seed, IDs: knnIDs(view),
		})
		if err != nil {
			return nil, 0, err
		}
		body, err = marshalKNN(view, answers)
		// With fewer than K objects, any insert anywhere joins the k-NN set:
		// the critical distance f_k only prunes when at least K objects exist.
		return body, boundedRadius(n >= spec.K && n > 0, st.FMin), err

	default:
		return nil, 0, fmt.Errorf("monitor: unknown query kind %d", spec.Kind)
	}
}

// EvaluateIncremental is Evaluate over a persistent per-query evaluation
// state: unchanged candidates keep their cached distance pdfs, single
// entries/departures patch the cached subregion table in place, and when the
// triggering changes provably cannot alter the answer the verifier is
// skipped entirely (inc.Skipped: body is nil and the previous answer stands,
// radius is unchanged). changed maps the stable IDs modified since the
// state's last evaluation to dense-slot hints (see core.SlotUnknown and
// core.SlotDeleted); full forces a complete re-derivation (feed gaps,
// truncations, raced influence-rect growth — any time the changed set is not
// exhaustive). Bodies are byte-identical to Evaluate on the same view.
func EvaluateIncremental(view *store.View, eng *core.Engine, st *core.EvalState, spec Spec, changed map[uint64]int, full bool) (body []byte, radius float64, inc core.IncrementalStats, err error) {
	if eng == nil {
		eng, err = core.NewEngineWithIndex(view.Dataset, view.Index)
		if err != nil {
			return nil, 0, inc, err
		}
	}
	if full {
		changed = nil // CPNNIncremental & co. treat nil as "everything changed"
	}
	ids := knnIDs(view)
	n := view.Dataset.Len()
	switch spec.Kind {
	case KindCPNN:
		res, inc, err := eng.CPNNIncremental(spec.Q, spec.Constraint, core.Options{Strategy: spec.Strategy}, st, ids, changed)
		if err != nil || inc.Skipped {
			return nil, 0, inc, err
		}
		body, err = marshalCPNN(view, res.Answers)
		return body, boundedRadius(n > 0, res.Stats.FMin), inc, err

	case KindPNN:
		probs, pst, inc, err := eng.PNNIncremental(spec.Q, core.Options{}, st, ids, changed)
		if err != nil || inc.Skipped {
			return nil, 0, inc, err
		}
		body, err = marshalPNN(view, probs)
		return body, boundedRadius(n > 0, pst.FMin), inc, err

	case KindKNN:
		answers, kst, inc, err := eng.KNNIncremental(spec.Q, spec.Constraint, core.KNNOptions{
			K: spec.K, Samples: spec.Samples, Seed: spec.Seed,
		}, st, ids, changed)
		if err != nil || inc.Skipped {
			return nil, 0, inc, err
		}
		body, err = marshalKNN(view, answers)
		return body, boundedRadius(n >= spec.K && n > 0, kst.FMin), inc, err

	default:
		return nil, 0, inc, fmt.Errorf("monitor: unknown query kind %d", spec.Kind)
	}
}

// marshalCPNN renders the canonical CPNN answer body: satisfying objects in
// stable-ID terms, bounds quantized (see round9), sorted by ID.
func marshalCPNN(view *store.View, answers []core.Answer) ([]byte, error) {
	out := make([]answerJSON, 0, len(answers))
	for _, a := range answers {
		out = append(out, answerJSON{
			ID: stableID(view, a.ID), L: round9(a.Bounds.L), U: round9(a.Bounds.U),
			Status: a.Status.String(),
		})
	}
	sortAnswers(out)
	return json.Marshal(struct {
		Answers []answerJSON `json:"answers"`
	}{out})
}

// marshalPNN renders the canonical PNN answer body.
func marshalPNN(view *store.View, probs []core.Probability) ([]byte, error) {
	out := make([]probJSON, 0, len(probs))
	for _, p := range probs {
		out = append(out, probJSON{ID: stableID(view, p.ID), P: round9(p.P)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return json.Marshal(struct {
		Probabilities []probJSON `json:"probabilities"`
	}{out})
}

// marshalKNN renders the canonical k-NN answer body (satisfying objects
// only).
func marshalKNN(view *store.View, answers []core.KNNAnswer) ([]byte, error) {
	out := make([]answerJSON, 0, len(answers))
	for _, a := range answers {
		if a.Status != verify.Satisfy {
			continue
		}
		out = append(out, answerJSON{
			ID: stableID(view, a.ID), L: round9(a.Bounds.L), U: round9(a.Bounds.U),
			Status: a.Status.String(),
		})
	}
	sortAnswers(out)
	return json.Marshal(struct {
		Answers []answerJSON `json:"answers"`
	}{out})
}

// stableID translates a dense engine ID through the view's stable-ID map.
func stableID(view *store.View, dense int) uint64 {
	if view.IDs == nil {
		return uint64(dense)
	}
	return view.IDs[dense]
}

// knnIDs returns the view's stable-ID map, synthesizing the identity for
// views without one so CKNN always runs in order-independent mode.
func knnIDs(view *store.View) []uint64 {
	if view.IDs != nil {
		return view.IDs
	}
	ids := make([]uint64, view.Dataset.Len())
	for i := range ids {
		ids[i] = uint64(i)
	}
	return ids
}

func sortAnswers(out []answerJSON) {
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
}

// boundedRadius returns the influence radius, widening to +Inf when the
// critical-distance argument does not apply (empty dataset, k-NN with fewer
// than K objects).
func boundedRadius(ok bool, r float64) float64 {
	if !ok {
		return math.Inf(1)
	}
	return r
}

// InfluenceRect is the influence region of a standing query at q with the
// radius an evaluation reported: every object whose region stays outside it
// provably cannot change the answer. Exported for the shard-cluster monitor,
// which joins member change feeds against the same rectangle the local
// monitor indexes.
func InfluenceRect(q, radius float64) geom.Rect { return influenceRect(q, radius) }

// influenceRect is the query's standing entry in the monitor's R-tree: every
// object whose region stays outside it provably cannot change the answer.
// Unbounded radii clamp to a huge finite interval (see maxCoord).
func influenceRect(q, radius float64) geom.Rect {
	lo, hi := q-radius, q+radius
	if math.IsInf(radius, 1) || lo < -maxCoord || hi > maxCoord {
		lo, hi = -maxCoord, maxCoord
	}
	return geom.Rect{MinX: lo, MinY: 0, MaxX: hi, MaxY: 0}
}
