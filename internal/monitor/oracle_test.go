package monitor

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/verify"
)

// TestMonitorOracle is the correctness gate of the subsystem: for 50 seeded
// update sequences it checks, after every commit, that
//
//  1. every standing query's stored answer is byte-identical to a fresh
//     evaluation at the store's current version (influence-region pruning
//     never suppresses a changed answer), and
//  2. non-pushed queries are exactly those whose recomputed answer is
//     unchanged — a subscriber replaying initial states + pushed updates
//     reconstructs the fresh answers, and no push ever carries an unchanged
//     body.
//
// It also checks that pruning actually prunes: across the localized
// workloads, only a minority of (query, commit) pairs re-evaluate.
func TestMonitorOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("50 seeded runs")
	}
	var totalPairs, totalAffected uint64
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			pairs, affected := runOracleSeed(t, seed)
			totalPairs += pairs
			totalAffected += affected
		})
	}
	if totalAffected*2 >= totalPairs {
		t.Fatalf("pruning ineffective: %d of %d (query, commit) pairs re-evaluated",
			totalAffected, totalPairs)
	}
	t.Logf("re-evaluated %d of %d pairs (%.1f%%)", totalAffected, totalPairs,
		100*float64(totalAffected)/float64(totalPairs))
}

func runOracleSeed(t *testing.T, seed int64) (pairs, affected uint64) {
	rng := rand.New(rand.NewSource(seed))
	s, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const domain = 10000.0
	randIv := func() (float64, float64) {
		lo := rng.Float64() * domain
		return lo, lo + 1 + rng.Float64()*20
	}
	// Seed 60 objects spread over the domain.
	var ops []store.Op
	for i := 0; i < 60; i++ {
		lo, hi := randIv()
		ops = append(ops, store.InsertObject(pdf.MustUniform(lo, hi)))
	}
	res, err := s.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	live := append([]uint64(nil), res.IDs...)

	m, err := New(Config{Store: s, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Standing queries of all three kinds scattered over the domain.
	specs := []Spec{}
	for i := 0; i < 12; i++ {
		q := rng.Float64() * domain
		switch i % 3 {
		case 0:
			specs = append(specs, Spec{Kind: KindCPNN, Q: q,
				Constraint: verify.Constraint{P: 0.3, Delta: 0.01}})
		case 1:
			specs = append(specs, Spec{Kind: KindPNN, Q: q})
		case 2:
			specs = append(specs, Spec{Kind: KindKNN, Q: q,
				Constraint: verify.Constraint{P: 0.4, Delta: 0.05},
				K:          2, Samples: 400, Seed: seed})
		}
	}
	// The subscriber's reconstruction of each query's answer.
	clientView := map[uint64][]byte{}
	specOf := map[uint64]Spec{}
	sub, err := m.Subscribe(nil, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for _, sp := range specs {
		st, err := m.Register(sp)
		if err != nil {
			t.Fatal(err)
		}
		clientView[st.ID] = st.Answer
		specOf[st.ID] = sp
	}

	// Random localized op batches; every commit is followed by a full oracle
	// sweep.
	for step := 0; step < 10; step++ {
		nops := 1 + rng.Intn(4)
		var batch []store.Op
		for i := 0; i < nops; i++ {
			switch op := rng.Intn(10); {
			case op < 4 && len(live) > 0: // localized update: nudge an object
				id := live[rng.Intn(len(live))]
				lo, hi := randIv()
				batch = append(batch, store.UpdateObject(id, pdf.MustUniform(lo, hi)))
			case op < 7: // insert
				lo, hi := randIv()
				batch = append(batch, store.InsertObject(pdf.MustUniform(lo, hi)))
			case len(live) > 1: // delete (reshuffles dense IDs)
				i := rng.Intn(len(live))
				batch = append(batch, store.Delete(live[i]))
				live = append(live[:i], live[i+1:]...)
			default:
				lo, hi := randIv()
				batch = append(batch, store.InsertObject(pdf.MustUniform(lo, hi)))
			}
		}
		res, err := s.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range batch {
			if op.Code != store.OpDelete && op.ID == 0 {
				live = append(live, res.IDs[i])
			}
		}
		if err := m.Sync(syncTimeout); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}

		// Drain pushed updates into the client view; a push must always
		// change the client's answer (no spurious pushes).
		for drained := false; !drained; {
			select {
			case ev := <-sub.C():
				if ev.Type == EventLagged {
					t.Fatal("oversized subscription lagged")
				}
				prev := clientView[ev.Update.ID]
				if bytes.Equal(prev, ev.Update.Answer) {
					t.Fatalf("step %d: spurious push for monitor %d: %s",
						step, ev.Update.ID, ev.Update.Answer)
				}
				clientView[ev.Update.ID] = ev.Update.Answer
			default:
				drained = true
			}
		}

		// Oracle sweep: recompute everything at the current version.
		view := s.View()
		for id, sp := range specOf {
			fresh, _, err := Evaluate(view, nil, nil, sp)
			if err != nil {
				t.Fatal(err)
			}
			st, ok := m.Get(id)
			if !ok {
				t.Fatalf("monitor %d vanished", id)
			}
			if !bytes.Equal(st.Answer, fresh) {
				t.Fatalf("step %d seed %d: monitor %d (%s q=%g) stored answer stale:\n got %s\nwant %s\n(pruning suppressed a change)",
					step, seed, id, sp.Kind, sp.Q, st.Answer, fresh)
			}
			if !bytes.Equal(clientView[id], fresh) {
				t.Fatalf("step %d seed %d: subscriber view of monitor %d stale:\n got %s\nwant %s",
					step, seed, id, clientView[id], fresh)
			}
		}
	}
	st := m.Stats()
	return st.Affected + st.Pruned, st.Affected
}
