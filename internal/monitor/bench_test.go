package monitor

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/verify"
)

// BenchmarkMonitorCommit measures the end-to-end cost of one localized
// update commit with standing queries registered: WAL append, view publish,
// spatial join, and the (few) triggered re-evaluations, through quiescence.
// The standing-query count is the axis: with influence pruning the cost
// should stay nearly flat as queries grow, where naive re-evaluate-all is
// linear (see internal/exp.MonitorExperiment for the recorded comparison).
// BenchmarkMonitorCommitBatch measures one multi-op commit through
// quiescence — the batch axis of the continuous-monitoring experiment, where
// each commit dirties many standing queries at once and the incremental
// evaluation path earns its keep.
func BenchmarkMonitorCommitBatch(b *testing.B) {
	for _, size := range []int{16, 64} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			s, err := store.Open(b.TempDir(), store.Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			rng := rand.New(rand.NewSource(1))
			const domain = 10000.0
			var ops []store.Op
			for i := 0; i < 10000; i++ {
				lo := rng.Float64() * domain
				ops = append(ops, store.InsertObject(pdf.MustUniform(lo, lo+1+rng.Float64()*24)))
			}
			res, err := s.Apply(ops)
			if err != nil {
				b.Fatal(err)
			}
			m, err := New(Config{Store: s})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			for i := 0; i < 200; i++ {
				if _, err := m.Register(Spec{Kind: KindCPNN, Q: rng.Float64() * domain,
					Constraint: verify.Constraint{P: 0.3, Delta: 0.01}}); err != nil {
					b.Fatal(err)
				}
			}
			ids := res.IDs
			batch := make([]store.Op, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					lo := rng.Float64() * domain
					batch[j] = store.UpdateObject(ids[rng.Intn(len(ids))],
						pdf.MustUniform(lo, lo+1+rng.Float64()*24))
				}
				if _, err := s.Apply(batch); err != nil {
					b.Fatal(err)
				}
				if err := m.Sync(30 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMonitorCommit(b *testing.B) {
	for _, nq := range []int{16, 256} {
		b.Run(fmt.Sprintf("queries=%d", nq), func(b *testing.B) {
			dir := b.TempDir()
			s, err := store.Open(dir, store.Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			rng := rand.New(rand.NewSource(1))
			const domain = 10000.0
			var ops []store.Op
			for i := 0; i < 2000; i++ {
				lo := rng.Float64() * domain
				ops = append(ops, store.InsertObject(pdf.MustUniform(lo, lo+1+rng.Float64()*12)))
			}
			res, err := s.Apply(ops)
			if err != nil {
				b.Fatal(err)
			}
			m, err := New(Config{Store: s})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			for i := 0; i < nq; i++ {
				if _, err := m.Register(Spec{Kind: KindCPNN, Q: rng.Float64() * domain,
					Constraint: verify.Constraint{P: 0.3, Delta: 0.01}}); err != nil {
					b.Fatal(err)
				}
			}
			ids := res.IDs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := ids[rng.Intn(len(ids))]
				lo := rng.Float64() * domain
				if _, err := s.Apply([]store.Op{
					store.UpdateObject(id, pdf.MustUniform(lo, lo+1+rng.Float64()*12)),
				}); err != nil {
					b.Fatal(err)
				}
				if err := m.Sync(30 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := m.Stats()
			if st.Affected+st.Pruned > 0 {
				b.ReportMetric(float64(st.Affected)/float64(st.Affected+st.Pruned), "reeval-fraction")
			}
		})
	}
}
