// Package geom provides the small amount of computational geometry needed by
// the C-PNN engine: one-dimensional intervals, two-dimensional points,
// rectangles and circles, and the min/max distance metrics used by the
// R-tree filtering phase.
package geom

import (
	"fmt"
	"math"
)

// Interval is a closed one-dimensional interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// NewInterval returns the interval [lo, hi]. It panics if hi < lo or either
// bound is NaN, since such intervals indicate a programming error upstream.
func NewInterval(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		panic("geom: NaN interval bound")
	}
	if hi < lo {
		panic(fmt.Sprintf("geom: inverted interval [%g, %g]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// Length returns Hi - Lo.
func (iv Interval) Length() float64 { return iv.Hi - iv.Lo }

// Center returns the midpoint of the interval.
func (iv Interval) Center() float64 { return iv.Lo + (iv.Hi-iv.Lo)/2 }

// Contains reports whether x lies in [Lo, Hi].
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// ContainsInterval reports whether other lies entirely within iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	return other.Lo >= iv.Lo && other.Hi <= iv.Hi
}

// Intersects reports whether the two closed intervals share at least a point.
func (iv Interval) Intersects(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Intersect returns the overlap of the two intervals and whether it is
// non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	lo := math.Max(iv.Lo, other.Lo)
	hi := math.Min(iv.Hi, other.Hi)
	if hi < lo {
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// Union returns the smallest interval covering both inputs.
func (iv Interval) Union(other Interval) Interval {
	return Interval{Lo: math.Min(iv.Lo, other.Lo), Hi: math.Max(iv.Hi, other.Hi)}
}

// MinDist returns the smallest possible |x - q| for x in the interval. It is
// the "near point" distance of the uncertainty region from q.
func (iv Interval) MinDist(q float64) float64 {
	switch {
	case q < iv.Lo:
		return iv.Lo - q
	case q > iv.Hi:
		return q - iv.Hi
	default:
		return 0
	}
}

// MaxDist returns the largest possible |x - q| for x in the interval. It is
// the "far point" distance of the uncertainty region from q.
func (iv Interval) MaxDist(q float64) float64 {
	return math.Max(math.Abs(q-iv.Lo), math.Abs(q-iv.Hi))
}

// IsDegenerate reports whether the interval is a single point.
func (iv Interval) IsDegenerate() bool { return iv.Hi == iv.Lo }

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi) }

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(other Point) float64 {
	return math.Hypot(p.X-other.X, p.Y-other.Y)
}

// Rect is an axis-aligned rectangle in the plane. One-dimensional intervals
// are embedded as rectangles with MinY == MaxY == 0 so the same R-tree serves
// both dimensionalities.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectFromInterval embeds a 1-D interval on the x-axis.
func RectFromInterval(iv Interval) Rect {
	return Rect{MinX: iv.Lo, MinY: 0, MaxX: iv.Hi, MaxY: 0}
}

// RectFromCircle returns the bounding box of a circle.
func RectFromCircle(c Circle) Rect {
	return Rect{
		MinX: c.Center.X - c.Radius, MinY: c.Center.Y - c.Radius,
		MaxX: c.Center.X + c.Radius, MaxY: c.Center.Y + c.Radius,
	}
}

// Interval extracts the x-extent of the rectangle.
func (r Rect) Interval() Interval { return Interval{Lo: r.MinX, Hi: r.MaxX} }

// IsValid reports whether the rectangle is non-inverted and NaN-free.
func (r Rect) IsValid() bool {
	return !math.IsNaN(r.MinX) && !math.IsNaN(r.MinY) &&
		!math.IsNaN(r.MaxX) && !math.IsNaN(r.MaxY) &&
		r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Area returns the rectangle's area. Degenerate rectangles have zero area.
func (r Rect) Area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// Margin returns half the rectangle's perimeter, the R*-style margin metric.
func (r Rect) Margin() float64 { return (r.MaxX - r.MinX) + (r.MaxY - r.MinY) }

// Union returns the smallest rectangle containing both inputs.
func (r Rect) Union(other Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, other.MinX),
		MinY: math.Min(r.MinY, other.MinY),
		MaxX: math.Max(r.MaxX, other.MaxX),
		MaxY: math.Max(r.MaxY, other.MaxY),
	}
}

// Intersects reports whether the rectangles overlap (closed boundaries).
func (r Rect) Intersects(other Rect) bool {
	return r.MinX <= other.MaxX && other.MinX <= r.MaxX &&
		r.MinY <= other.MaxY && other.MinY <= r.MaxY
}

// Contains reports whether other lies entirely within r.
func (r Rect) Contains(other Rect) bool {
	return other.MinX >= r.MinX && other.MaxX <= r.MaxX &&
		other.MinY >= r.MinY && other.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies in the closed rectangle.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Enlargement returns the area growth needed for r to absorb other.
func (r Rect) Enlargement(other Rect) float64 {
	return r.Union(other).Area() - r.Area()
}

// Center returns the rectangle's centroid.
func (r Rect) Center() Point {
	return Point{X: r.MinX + (r.MaxX-r.MinX)/2, Y: r.MinY + (r.MaxY-r.MinY)/2}
}

// MinDist returns the minimum Euclidean distance from q to any point of the
// rectangle (zero if q is inside). This is the classical MINDIST metric of
// Roussopoulos et al. used for best-first nearest-neighbor search.
func (r Rect) MinDist(q Point) float64 {
	dx := axisDist(q.X, r.MinX, r.MaxX)
	dy := axisDist(q.Y, r.MinY, r.MaxY)
	return math.Hypot(dx, dy)
}

// MaxDist returns the maximum Euclidean distance from q to any point of the
// rectangle, attained at the corner farthest from q.
func (r Rect) MaxDist(q Point) float64 {
	dx := math.Max(math.Abs(q.X-r.MinX), math.Abs(q.X-r.MaxX))
	dy := math.Max(math.Abs(q.Y-r.MinY), math.Abs(q.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// MinMaxDist returns the MINMAXDIST metric of Roussopoulos et al.: the
// smallest upper bound on the distance from q to the nearest object contained
// in the rectangle, assuming every face of the rectangle touches an object.
// The filtering phase uses it to tighten f_min during tree descent.
func (r Rect) MinMaxDist(q Point) float64 {
	// For each axis k, take the nearer edge on axis k and the farther edge
	// on every other axis; the answer is the minimum over k.
	rmX := nearerEdge(q.X, r.MinX, r.MaxX)
	rmY := nearerEdge(q.Y, r.MinY, r.MaxY)
	rMX := fartherEdge(q.X, r.MinX, r.MaxX)
	rMY := fartherEdge(q.Y, r.MinY, r.MaxY)

	dX := math.Hypot(q.X-rmX, q.Y-rMY)
	dY := math.Hypot(q.X-rMX, q.Y-rmY)
	return math.Min(dX, dY)
}

func axisDist(q, lo, hi float64) float64 {
	switch {
	case q < lo:
		return lo - q
	case q > hi:
		return q - hi
	default:
		return 0
	}
}

func nearerEdge(q, lo, hi float64) float64 {
	if q <= lo+(hi-lo)/2 {
		return lo
	}
	return hi
}

func fartherEdge(q, lo, hi float64) float64 {
	if q >= lo+(hi-lo)/2 {
		return lo
	}
	return hi
}

// Circle is a disk-shaped uncertainty region in the plane.
type Circle struct {
	Center Point
	Radius float64
}

// MinDist returns the smallest distance from q to a point of the disk.
func (c Circle) MinDist(q Point) float64 {
	return math.Max(0, c.Center.Dist(q)-c.Radius)
}

// MaxDist returns the largest distance from q to a point of the disk.
func (c Circle) MaxDist(q Point) float64 {
	return c.Center.Dist(q) + c.Radius
}

// Contains reports whether q lies inside the closed disk.
func (c Circle) Contains(q Point) bool {
	return c.Center.Dist(q) <= c.Radius
}

// Area returns the disk's area.
func (c Circle) Area() float64 { return math.Pi * c.Radius * c.Radius }

// LensArea returns the area of the intersection of two disks. It is used to
// derive distance cdfs for circular uncertainty regions: the probability that
// a uniformly-distributed object inside c lies within distance r of q is
// LensArea(c, Circle{q, r}) / c.Area().
func LensArea(a, b Circle) float64 {
	d := a.Center.Dist(b.Center)
	if d >= a.Radius+b.Radius {
		return 0
	}
	small, big := a.Radius, b.Radius
	if small > big {
		small, big = big, small
	}
	if d <= big-small {
		// The smaller disk is entirely inside the larger one.
		return math.Pi * small * small
	}
	r1, r2 := a.Radius, b.Radius
	// Standard circle-circle intersection ("lens") area.
	d1 := (d*d - r2*r2 + r1*r1) / (2 * d)
	d2 := d - d1
	seg := func(r, x float64) float64 {
		// Area of the circular segment of radius r cut at distance x from
		// the center. Clamp acos argument against round-off.
		t := x / r
		if t > 1 {
			t = 1
		} else if t < -1 {
			t = -1
		}
		return r*r*math.Acos(t) - x*math.Sqrt(math.Max(0, r*r-x*x))
	}
	return seg(r1, d1) + seg(r2, d2)
}
