package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(2, 6)
	if got := iv.Length(); got != 4 {
		t.Errorf("Length = %g, want 4", got)
	}
	if got := iv.Center(); got != 4 {
		t.Errorf("Center = %g, want 4", got)
	}
	if !iv.Contains(2) || !iv.Contains(6) || !iv.Contains(4) {
		t.Error("closed interval should contain its endpoints and interior")
	}
	if iv.Contains(1.999) || iv.Contains(6.001) {
		t.Error("interval contains points outside its bounds")
	}
	if !iv.IsDegenerate() == iv.IsDegenerate() && iv.IsDegenerate() {
		t.Error("non-degenerate interval reported degenerate")
	}
	if !NewInterval(3, 3).IsDegenerate() {
		t.Error("degenerate interval not detected")
	}
}

func TestNewIntervalPanics(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi float64
	}{
		{"inverted", 5, 1},
		{"nan-lo", math.NaN(), 1},
		{"nan-hi", 0, math.NaN()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewInterval(%g, %g) did not panic", tc.lo, tc.hi)
				}
			}()
			NewInterval(tc.lo, tc.hi)
		})
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := NewInterval(0, 5)
	b := NewInterval(3, 8)
	got, ok := a.Intersect(b)
	if !ok || got.Lo != 3 || got.Hi != 5 {
		t.Errorf("Intersect = %v, %v; want [3,5], true", got, ok)
	}
	c := NewInterval(6, 7)
	if _, ok := a.Intersect(c); ok {
		t.Error("disjoint intervals reported intersecting")
	}
	// Touching intervals intersect in a single point.
	d := NewInterval(5, 9)
	got, ok = a.Intersect(d)
	if !ok || !got.IsDegenerate() {
		t.Errorf("touching intervals: got %v, %v; want degenerate point", got, ok)
	}
	if !a.Intersects(b) || a.Intersects(c) || !a.Intersects(d) {
		t.Error("Intersects disagrees with Intersect")
	}
}

func TestIntervalUnionContains(t *testing.T) {
	a := NewInterval(0, 2)
	b := NewInterval(5, 7)
	u := a.Union(b)
	if u.Lo != 0 || u.Hi != 7 {
		t.Errorf("Union = %v, want [0,7]", u)
	}
	if !u.ContainsInterval(a) || !u.ContainsInterval(b) {
		t.Error("union does not contain its inputs")
	}
	if a.ContainsInterval(u) {
		t.Error("smaller interval claims to contain its union")
	}
}

func TestIntervalMinMaxDist(t *testing.T) {
	iv := NewInterval(10, 20)
	cases := []struct {
		q        float64
		min, max float64
	}{
		{5, 5, 15},  // left of interval
		{25, 5, 15}, // right of interval
		{15, 0, 5},  // inside, centered
		{12, 0, 8},  // inside, off-center
		{10, 0, 10}, // on left endpoint
		{20, 0, 10}, // on right endpoint
		{-10, 20, 30},
	}
	for _, tc := range cases {
		if got := iv.MinDist(tc.q); got != tc.min {
			t.Errorf("MinDist(%g) = %g, want %g", tc.q, got, tc.min)
		}
		if got := iv.MaxDist(tc.q); got != tc.max {
			t.Errorf("MaxDist(%g) = %g, want %g", tc.q, got, tc.max)
		}
	}
}

func TestIntervalMinMaxDistProperty(t *testing.T) {
	// For any interval and query, MinDist <= |x-q| <= MaxDist for sampled x.
	f := func(a, b, q, frac float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		// Restrict to a range where interval arithmetic cannot overflow;
		// the engine operates on bounded spatial domains anyway.
		const lim = 1e12
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsNaN(q) ||
			math.Abs(lo) > lim || math.Abs(hi) > lim || math.Abs(q) > lim {
			return true
		}
		iv := NewInterval(lo, hi)
		fr := math.Abs(math.Mod(frac, 1))
		x := lo + fr*(hi-lo)
		d := math.Abs(x - q)
		const eps = 1e-9
		return iv.MinDist(q) <= d+eps && d <= iv.MaxDist(q)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 2}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %g, want 8", got)
	}
	if got := r.Margin(); got != 6 {
		t.Errorf("Margin = %g, want 6", got)
	}
	if c := r.Center(); c.X != 2 || c.Y != 1 {
		t.Errorf("Center = %v, want (2,1)", c)
	}
	if !r.IsValid() {
		t.Error("valid rect reported invalid")
	}
	bad := Rect{MinX: 5, MaxX: 1}
	if bad.IsValid() {
		t.Error("inverted rect reported valid")
	}
	nan := Rect{MinX: math.NaN()}
	if nan.IsValid() {
		t.Error("NaN rect reported valid")
	}
}

func TestRectUnionIntersects(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	c := Rect{5, 5, 6, 6}
	u := a.Union(b)
	if u != (Rect{0, 0, 3, 3}) {
		t.Errorf("Union = %v", u)
	}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects wrong")
	}
	if !u.Contains(a) || !u.Contains(b) || u.Contains(Rect{-1, 0, 2, 2}) {
		t.Error("Contains wrong")
	}
	if got := a.Enlargement(b); got != 5 {
		t.Errorf("Enlargement = %g, want 5", got)
	}
	if got := a.Enlargement(Rect{0.5, 0.5, 1, 1}); got != 0 {
		t.Errorf("Enlargement of contained rect = %g, want 0", got)
	}
}

func TestRectMinMaxDist(t *testing.T) {
	r := Rect{1, 1, 3, 3}
	inside := Point{2, 2}
	if got := r.MinDist(inside); got != 0 {
		t.Errorf("MinDist(inside) = %g, want 0", got)
	}
	q := Point{0, 2} // 1 left of the rect
	if got := r.MinDist(q); got != 1 {
		t.Errorf("MinDist = %g, want 1", got)
	}
	wantMax := math.Hypot(3, 1) // to corner (3,1) or (3,3)
	if got := r.MaxDist(q); math.Abs(got-wantMax) > 1e-12 {
		t.Errorf("MaxDist = %g, want %g", got, wantMax)
	}
}

func TestRectMinMaxDistSandwich(t *testing.T) {
	// MINDIST <= MINMAXDIST <= MAXDIST must always hold.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		x1, y1 := rng.Float64()*100, rng.Float64()*100
		r := Rect{x1, y1, x1 + rng.Float64()*50, y1 + rng.Float64()*50}
		q := Point{rng.Float64()*200 - 50, rng.Float64()*200 - 50}
		lo, mid, hi := r.MinDist(q), r.MinMaxDist(q), r.MaxDist(q)
		if lo > mid+1e-9 || mid > hi+1e-9 {
			t.Fatalf("MINDIST %g <= MINMAXDIST %g <= MAXDIST %g violated for %v, q=%v",
				lo, mid, hi, r, q)
		}
	}
}

func TestRectIntervalRoundTrip(t *testing.T) {
	iv := NewInterval(3, 9)
	r := RectFromInterval(iv)
	if r.Interval() != iv {
		t.Errorf("round trip gave %v, want %v", r.Interval(), iv)
	}
	if r.MinY != 0 || r.MaxY != 0 {
		t.Error("interval embedding should be flat on y")
	}
	// 1-D distances must agree with the rect metrics on the embedding.
	for _, q := range []float64{-5, 3, 6, 9, 14} {
		p := Point{q, 0}
		if iv.MinDist(q) != r.MinDist(p) {
			t.Errorf("MinDist mismatch at q=%g: %g vs %g", q, iv.MinDist(q), r.MinDist(p))
		}
		if iv.MaxDist(q) != r.MaxDist(p) {
			t.Errorf("MaxDist mismatch at q=%g: %g vs %g", q, iv.MaxDist(q), r.MaxDist(p))
		}
	}
}

func TestCircleDistances(t *testing.T) {
	c := Circle{Center: Point{0, 0}, Radius: 2}
	if got := c.MinDist(Point{5, 0}); got != 3 {
		t.Errorf("MinDist = %g, want 3", got)
	}
	if got := c.MaxDist(Point{5, 0}); got != 7 {
		t.Errorf("MaxDist = %g, want 7", got)
	}
	if got := c.MinDist(Point{1, 0}); got != 0 {
		t.Errorf("MinDist inside = %g, want 0", got)
	}
	if !c.Contains(Point{1, 1}) || c.Contains(Point{2, 2}) {
		t.Error("Contains wrong")
	}
}

func TestLensAreaKnownCases(t *testing.T) {
	a := Circle{Point{0, 0}, 1}
	// Disjoint.
	if got := LensArea(a, Circle{Point{3, 0}, 1}); got != 0 {
		t.Errorf("disjoint lens area = %g, want 0", got)
	}
	// Contained: smaller circle fully inside.
	small := Circle{Point{0.1, 0}, 0.2}
	if got := LensArea(a, small); math.Abs(got-small.Area()) > 1e-12 {
		t.Errorf("contained lens area = %g, want %g", got, small.Area())
	}
	// Identical circles: full area.
	if got := LensArea(a, a); math.Abs(got-a.Area()) > 1e-12 {
		t.Errorf("identical lens area = %g, want %g", got, a.Area())
	}
	// Two unit circles at distance 1: known closed form
	// 2*acos(1/2) - sqrt(3)/2*... = 2*(pi/3) - sqrt(3)/2 per circle segment sum.
	want := 2*math.Pi/3 - math.Sqrt(3)/2
	got := LensArea(a, Circle{Point{1, 0}, 1})
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("unit lens area = %g, want %g", got, want)
	}
}

func TestLensAreaMonotoneInRadius(t *testing.T) {
	// Growing the probe radius never shrinks the lens: this is the property
	// that makes circle-based distance cdfs monotone.
	c := Circle{Point{0, 0}, 3}
	q := Point{4, 1}
	prev := 0.0
	for r := 0.0; r <= 12; r += 0.25 {
		area := LensArea(c, Circle{q, r})
		if area < prev-1e-12 {
			t.Fatalf("lens area decreased at r=%g: %g < %g", r, area, prev)
		}
		prev = area
	}
	// And it saturates at the full region area.
	if math.Abs(prev-c.Area()) > 1e-9 {
		t.Errorf("lens area did not saturate: %g vs %g", prev, c.Area())
	}
}
