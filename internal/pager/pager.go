// Package pager implements the disk-based layout the paper sketches for
// subregion data: "the lists can be partitioned into disk pages" (§IV-D
// implementation notes). It provides a page-granular file, an LRU buffer
// pool with pin/unpin semantics and dirty-page write-back, and a
// SubregionStore that serializes a subregion table into per-subregion record
// lists chained across pages, indexed by an in-memory directory (the paper's
// hash table).
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageSize is the fixed page granularity (4 KiB, the classical default).
const PageSize = 4096

// PageID identifies a page within a file.
type PageID uint32

// InvalidPage marks the absence of a page (end of a chain).
const InvalidPage = PageID(0xFFFFFFFF)

// File is a page-granular file. All reads and writes move whole pages.
type File struct {
	mu    sync.Mutex
	f     *os.File
	pages uint32
}

// Create creates (or truncates) a page file at path.
func Create(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	return &File{f: f}, nil
}

// Open opens an existing page file.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: file size %d is not page-aligned", st.Size())
	}
	return &File{f: f, pages: uint32(st.Size() / PageSize)}, nil
}

// NumPages returns the number of allocated pages.
func (pf *File) NumPages() int {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return int(pf.pages)
}

// Allocate appends a zeroed page and returns its ID.
func (pf *File) Allocate() (PageID, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	id := PageID(pf.pages)
	if id == InvalidPage {
		return InvalidPage, errors.New("pager: page space exhausted")
	}
	var zero [PageSize]byte
	if _, err := pf.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return InvalidPage, fmt.Errorf("pager: %w", err)
	}
	pf.pages++
	return id, nil
}

// ReadPage fills buf (PageSize bytes) with page id's contents.
func (pf *File) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("pager: buffer size %d != page size", len(buf))
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if uint32(id) >= pf.pages {
		return fmt.Errorf("pager: read of page %d (byte offset %d) beyond end (%d pages)",
			id, int64(id)*PageSize, pf.pages)
	}
	_, err := pf.f.ReadAt(buf, int64(id)*PageSize)
	if err != nil {
		return fmt.Errorf("pager: reading page %d (byte offset %d): %w", id, int64(id)*PageSize, err)
	}
	return nil
}

// WritePage writes buf (PageSize bytes) to page id.
func (pf *File) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("pager: buffer size %d != page size", len(buf))
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if uint32(id) >= pf.pages {
		return fmt.Errorf("pager: write of page %d (byte offset %d) beyond end (%d pages)",
			id, int64(id)*PageSize, pf.pages)
	}
	if _, err := pf.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: writing page %d (byte offset %d): %w", id, int64(id)*PageSize, err)
	}
	return nil
}

// Sync forces all written pages to stable storage. Durable checkpoints call
// it before publishing (renaming) the file.
func (pf *File) Sync() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if err := pf.f.Sync(); err != nil {
		return fmt.Errorf("pager: %w", err)
	}
	return nil
}

// Close flushes and closes the underlying file.
func (pf *File) Close() error { return pf.f.Close() }

// Stats counts buffer pool activity.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// BufferPool caches pages of a File with LRU eviction and write-back of
// dirty pages. Pages are pinned while a frame is held and must be unpinned
// (or marked dirty) via the returned Frame.
type BufferPool struct {
	mu       sync.Mutex
	file     *File
	capacity int
	frames   map[PageID]*frame
	lruHead  *frame // most recently used
	lruTail  *frame // least recently used
	stats    Stats
}

type frame struct {
	id         PageID
	data       [PageSize]byte
	pins       int
	dirty      bool
	prev, next *frame
}

// NewBufferPool wraps file with a pool of the given page capacity.
func NewBufferPool(file *File, capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("pager: pool capacity %d < 1", capacity)
	}
	return &BufferPool{
		file:     file,
		capacity: capacity,
		frames:   map[PageID]*frame{},
	}, nil
}

// Frame is a pinned page. Data is valid until Unpin.
type Frame struct {
	pool *BufferPool
	fr   *frame
}

// Data returns the page bytes; mutating them requires MarkDirty.
func (h *Frame) Data() []byte { return h.fr.data[:] }

// MarkDirty schedules the page for write-back on eviction or flush.
func (h *Frame) MarkDirty() {
	h.pool.mu.Lock()
	h.fr.dirty = true
	h.pool.mu.Unlock()
}

// Unpin releases the page; the frame must not be used afterwards.
func (h *Frame) Unpin() {
	h.pool.mu.Lock()
	if h.fr.pins > 0 {
		h.fr.pins--
	}
	h.pool.mu.Unlock()
}

// Fetch pins page id into the pool, reading it from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		fr.pins++
		bp.touch(fr)
		return &Frame{pool: bp, fr: fr}, nil
	}
	bp.stats.Misses++
	fr, err := bp.newFrame(id)
	if err != nil {
		return nil, err
	}
	if err := bp.file.ReadPage(id, fr.data[:]); err != nil {
		bp.remove(fr)
		return nil, err
	}
	fr.pins = 1
	return &Frame{pool: bp, fr: fr}, nil
}

// Allocate creates a new page on disk and pins it.
func (bp *BufferPool) Allocate() (*Frame, error) {
	id, err := bp.file.Allocate()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, err := bp.newFrame(id)
	if err != nil {
		return nil, err
	}
	fr.pins = 1
	return &Frame{pool: bp, fr: fr}, nil
}

// ID returns the frame's page ID.
func (h *Frame) ID() PageID { return h.fr.id }

// newFrame inserts a frame for id, evicting if necessary. Caller holds mu.
func (bp *BufferPool) newFrame(id PageID) (*frame, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	fr := &frame{id: id}
	bp.frames[id] = fr
	bp.pushFront(fr)
	return fr, nil
}

// evictLocked drops the least recently used unpinned page.
func (bp *BufferPool) evictLocked() error {
	for fr := bp.lruTail; fr != nil; fr = fr.prev {
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if err := bp.file.WritePage(fr.id, fr.data[:]); err != nil {
				return err
			}
		}
		bp.remove(fr)
		bp.stats.Evictions++
		return nil
	}
	return errors.New("pager: all pages pinned; cannot evict")
}

// Flush writes back every dirty page without evicting.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		if fr.dirty {
			if err := bp.file.WritePage(fr.id, fr.data[:]); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Stats returns a snapshot of hit/miss/eviction counters.
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

func (bp *BufferPool) touch(fr *frame) {
	bp.unlink(fr)
	bp.pushFront(fr)
}

func (bp *BufferPool) pushFront(fr *frame) {
	fr.prev = nil
	fr.next = bp.lruHead
	if bp.lruHead != nil {
		bp.lruHead.prev = fr
	}
	bp.lruHead = fr
	if bp.lruTail == nil {
		bp.lruTail = fr
	}
}

func (bp *BufferPool) unlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else if bp.lruHead == fr {
		bp.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else if bp.lruTail == fr {
		bp.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

func (bp *BufferPool) remove(fr *frame) {
	bp.unlink(fr)
	delete(bp.frames, fr.id)
}

// binary layout helpers shared with the subregion store.
var byteOrder = binary.LittleEndian
