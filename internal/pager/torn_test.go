package pager

import (
	"os"
	"path/filepath"
	"testing"
)

// The torn-write suite injects the partial page writes and short reads a
// crash can leave behind and asserts the pager detects every one instead of
// serving bytes it cannot vouch for.

func tornFile(t *testing.T, pages int) (string, *File) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.db")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for p := 0; p < pages; p++ {
		id, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			buf[i] = byte(p)
		}
		if err := pf.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	return path, pf
}

func TestOpenRejectsTornFinalPage(t *testing.T) {
	path, pf := tornFile(t, 3)
	pf.Close()

	// A torn write leaves a page-misaligned file: Open must refuse it.
	for _, cut := range []int64{1, PageSize / 2, PageSize - 1} {
		if err := os.Truncate(path, 2*PageSize+cut); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); err == nil {
			t.Fatalf("cut at 2*PageSize+%d accepted", cut)
		}
	}
	// An aligned truncation is a valid (shorter) file — the page simply no
	// longer exists, and reads past the end must error.
	if err := os.Truncate(path, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatalf("aligned truncation rejected: %v", err)
	}
	defer re.Close()
	if got := re.NumPages(); got != 2 {
		t.Fatalf("NumPages = %d, want 2", got)
	}
	buf := make([]byte, PageSize)
	if err := re.ReadPage(2, buf); err == nil {
		t.Fatal("short read beyond truncated end succeeded")
	}
	if err := re.ReadPage(1, buf); err != nil {
		t.Fatalf("surviving page unreadable: %v", err)
	}
	if buf[0] != 1 || buf[PageSize-1] != 1 {
		t.Fatalf("surviving page corrupted: %d ... %d", buf[0], buf[PageSize-1])
	}
}

func TestReopenedFileRoundTripsAfterSync(t *testing.T) {
	path, pf := tornFile(t, 4)
	pf.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	buf := make([]byte, PageSize)
	for p := 0; p < 4; p++ {
		if err := re.ReadPage(PageID(p), buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(p) {
			t.Fatalf("page %d holds %d", p, buf[0])
		}
	}
}

func TestSyncOnClosedFileErrors(t *testing.T) {
	path, pf := tornFile(t, 1)
	pf.Close()
	if err := pf.Sync(); err == nil {
		t.Fatal("Sync on closed file succeeded")
	}
	_ = path
}
