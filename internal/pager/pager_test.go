package pager

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/pdf"
	"repro/internal/subregion"
	"repro/internal/verify"
)

func newFile(t *testing.T) *File {
	t.Helper()
	pf, err := Create(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func TestFileAllocateReadWrite(t *testing.T) {
	pf := newFile(t)
	if pf.NumPages() != 0 {
		t.Fatalf("fresh file has %d pages", pf.NumPages())
	}
	id, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	if err := pf.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := pf.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != buf[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], buf[i])
		}
	}
}

func TestFileBoundsChecks(t *testing.T) {
	pf := newFile(t)
	buf := make([]byte, PageSize)
	if err := pf.ReadPage(0, buf); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if err := pf.WritePage(5, buf); err == nil {
		t.Error("write of unallocated page succeeded")
	}
	if err := pf.ReadPage(0, make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
}

// Read-path errors must name the page and its byte offset: a corruption
// report that says only "read failed" is useless when diagnosing which
// checkpoint page rotted.
func TestReadErrorsNamePageAndOffset(t *testing.T) {
	pf := newFile(t)
	for i := 0; i < 3; i++ {
		if _, err := pf.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, PageSize)
	err := pf.ReadPage(7, buf)
	if err == nil {
		t.Fatal("read beyond end succeeded")
	}
	for _, want := range []string{"page 7", fmt.Sprintf("byte offset %d", 7*PageSize)} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	// A read that fails at the OS layer (file truncated underneath the
	// pager) must also locate the page.
	if err := pf.f.Truncate(PageSize); err != nil {
		t.Fatal(err)
	}
	err = pf.ReadPage(2, buf)
	if err == nil {
		t.Fatal("read of truncated-away page succeeded")
	}
	for _, want := range []string{"page 2", fmt.Sprintf("byte offset %d", 2*PageSize)} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestFileReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.db")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	buf[0] = 0xAB
	if err := pf.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages() != 1 {
		t.Fatalf("reopened pages = %d", re.NumPages())
	}
	got := make([]byte, PageSize)
	if err := re.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Error("data lost across reopen")
	}
}

func TestBufferPoolHitMissEvict(t *testing.T) {
	pf := newFile(t)
	bp, err := NewBufferPool(pf, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate three pages with distinct contents.
	ids := make([]PageID, 3)
	for i := range ids {
		fr, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		fr.MarkDirty()
		ids[i] = fr.ID()
		fr.Unpin()
	}
	// Pool capacity 2: the first page has been evicted (written back).
	st := bp.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions with capacity 2 and 3 pages")
	}
	// Reading every page returns the right contents regardless of cache
	// state.
	for i, id := range ids {
		fr, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(i+1) {
			t.Errorf("page %d content %d, want %d", id, fr.Data()[0], i+1)
		}
		fr.Unpin()
	}
	// Re-fetch the most recent page immediately: guaranteed cache hit.
	fr, err := bp.Fetch(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	fr.Unpin()
	if got := bp.Stats(); got.Misses == 0 || got.Hits == 0 {
		t.Errorf("stats = %+v, expected hits and misses", got)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	pf := newFile(t)
	bp, err := NewBufferPool(pf, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Unpin()
	// Second allocation must fail: the only frame is pinned.
	if _, err := bp.Allocate(); err == nil {
		t.Error("allocation succeeded with all frames pinned")
	}
}

func TestBufferPoolValidation(t *testing.T) {
	pf := newFile(t)
	if _, err := NewBufferPool(pf, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestBufferPoolFlush(t *testing.T) {
	pf := newFile(t)
	bp, err := NewBufferPool(pf, 4)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[7] = 0x7F
	fr.MarkDirty()
	id := fr.ID()
	fr.Unpin()
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	// Bypass the pool: the bytes must be on disk.
	raw := make([]byte, PageSize)
	if err := pf.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if raw[7] != 0x7F {
		t.Error("flush did not reach disk")
	}
}

// buildTestTable constructs a subregion table through the real pipeline.
func buildTestTable(t *testing.T, nObj int, seed int64) *subregion.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	q := 50.0
	var cands []subregion.Candidate
	fMin := math.Inf(1)
	var nears []float64
	for i := 0; i < nObj; i++ {
		lo := q - 15 + rng.Float64()*30
		d, err := dist.FromPDF(pdf.MustUniform(lo, lo+1+rng.Float64()*10), q)
		if err != nil {
			t.Fatal(err)
		}
		nears = append(nears, d.Support().Lo)
		fMin = math.Min(fMin, d.Support().Hi)
		cands = append(cands, subregion.Candidate{ID: i, Dist: d})
	}
	kept := cands[:0]
	for i, c := range cands {
		if nears[i] <= fMin {
			kept = append(kept, c)
		}
	}
	tb, err := subregion.Build(kept)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestSubregionStoreRoundTrip(t *testing.T) {
	tb := buildTestTable(t, 40, 3)
	pf := newFile(t)
	bp, err := NewBufferPool(pf, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := NewSubregionStore(bp)
	if err := st.WriteTable(tb); err != nil {
		t.Fatal(err)
	}
	if st.NumSubregions() != tb.NumSubregions() {
		t.Fatalf("subregions %d != %d", st.NumSubregions(), tb.NumSubregions())
	}
	for j := 0; j < tb.NumSubregions(); j++ {
		entries, err := st.List(j)
		if err != nil {
			t.Fatal(err)
		}
		// Every non-zero s_ij must round-trip exactly.
		want := map[int32]Entry{}
		for i := 0; i < tb.NumCandidates(); i++ {
			if s := tb.S(i, j); s > 0 {
				want[int32(i)] = Entry{Candidate: int32(i), S: s, D: tb.D(i, j)}
			}
		}
		if len(entries) != len(want) {
			t.Fatalf("subregion %d: %d entries, want %d", j, len(entries), len(want))
		}
		for _, e := range entries {
			w, ok := want[e.Candidate]
			if !ok {
				t.Fatalf("subregion %d: unexpected candidate %d", j, e.Candidate)
			}
			if e.S != w.S || e.D != w.D {
				t.Fatalf("subregion %d candidate %d: (%g,%g) != (%g,%g)",
					j, e.Candidate, e.S, e.D, w.S, w.D)
			}
		}
	}
	if _, err := st.List(-1); err == nil {
		t.Error("negative subregion accepted")
	}
	if _, err := st.List(tb.NumSubregions()); err == nil {
		t.Error("out-of-range subregion accepted")
	}
}

func TestSubregionStoreMultiPageChain(t *testing.T) {
	// Force multi-page chains: >204 entries per subregion needs >1 page.
	tb := buildTestTable(t, 600, 9)
	pf := newFile(t)
	bp, err := NewBufferPool(pf, 4) // tiny pool to stress eviction
	if err != nil {
		t.Fatal(err)
	}
	st := NewSubregionStore(bp)
	if err := st.WriteTable(tb); err != nil {
		t.Fatal(err)
	}
	// At least one subregion should have spilled across pages.
	if pf.NumPages() <= tb.NumSubregions() {
		t.Logf("pages=%d subregions=%d (chains may still be single-page)",
			pf.NumPages(), tb.NumSubregions())
	}
	total := 0
	for j := 0; j < tb.NumSubregions(); j++ {
		entries, err := st.List(j)
		if err != nil {
			t.Fatal(err)
		}
		total += len(entries)
		for _, e := range entries {
			if got := tb.S(int(e.Candidate), j); got != e.S {
				t.Fatalf("subregion %d candidate %d: s %g != %g", j, e.Candidate, e.S, got)
			}
		}
	}
	if total == 0 {
		t.Fatal("no entries round-tripped")
	}
	if ev := bp.Stats().Evictions; ev == 0 {
		t.Error("tiny pool saw no evictions on a large table")
	}
}

func TestRSUpperBoundsMatchInMemoryVerifier(t *testing.T) {
	tb := buildTestTable(t, 50, 17)
	pf := newFile(t)
	bp, err := NewBufferPool(pf, 16)
	if err != nil {
		t.Fatal(err)
	}
	st := NewSubregionStore(bp)
	if err := st.WriteTable(tb); err != nil {
		t.Fatal(err)
	}
	got, err := st.RSUpperBounds(tb.NumCandidates())
	if err != nil {
		t.Fatal(err)
	}
	bounds := make([]verify.Bounds, tb.NumCandidates())
	status := make([]verify.Status, tb.NumCandidates())
	for i := range bounds {
		bounds[i] = verify.Bounds{L: 0, U: 1}
	}
	verify.RS{}.Apply(tb, bounds, status)
	for i := range bounds {
		if math.Abs(got[i]-bounds[i].U) > 1e-15 {
			t.Errorf("candidate %d: disk RS %g != memory RS %g", i, got[i], bounds[i].U)
		}
	}
}
