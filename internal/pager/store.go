package pager

import (
	"fmt"
	"math"

	"repro/internal/subregion"
)

// Entry is one record of a subregion list: the paper's (s_ij, D_i(e_j))
// number pair for candidate i in subregion j (Fig. 7(b)).
type Entry struct {
	// Candidate is the local candidate index within the table.
	Candidate int32
	// S is the subregion probability s_ij.
	S float64
	// D is the distance cdf at the subregion's lower end-point, D_i(e_j).
	D float64
}

const (
	entrySize      = 4 + 8 + 8 // int32 + 2 float64
	pageHeaderSize = 4 + 4     // next PageID + record count
	entriesPerPage = (PageSize - pageHeaderSize) / entrySize
)

// SubregionStore persists the per-subregion lists of a subregion table to a
// page file, chained across pages, with an in-memory directory from
// subregion index to first page (the paper's hash table of lists).
type SubregionStore struct {
	pool *BufferPool
	dir  []PageID // first page per subregion; InvalidPage when empty
	m    int
}

// NewSubregionStore prepares an empty store over the buffer pool.
func NewSubregionStore(pool *BufferPool) *SubregionStore {
	return &SubregionStore{pool: pool}
}

// WriteTable serializes every subregion list of t. Entries with zero
// subregion probability are omitted, exactly like the paper's lists, which
// only hold candidates with non-zero s_ij.
func (st *SubregionStore) WriteTable(t *subregion.Table) error {
	m := t.NumSubregions()
	st.m = m
	st.dir = make([]PageID, m)
	for j := 0; j < m; j++ {
		st.dir[j] = InvalidPage
		var entries []Entry
		for i := 0; i < t.NumCandidates(); i++ {
			if s := t.S(i, j); s > 0 {
				entries = append(entries, Entry{Candidate: int32(i), S: s, D: t.D(i, j)})
			}
		}
		if len(entries) == 0 {
			continue
		}
		first, err := st.writeChain(entries)
		if err != nil {
			return fmt.Errorf("pager: subregion %d: %w", j, err)
		}
		st.dir[j] = first
	}
	return st.pool.Flush()
}

// writeChain stores entries across as many chained pages as needed and
// returns the first page's ID.
func (st *SubregionStore) writeChain(entries []Entry) (PageID, error) {
	first := InvalidPage
	var prev *Frame
	for off := 0; off < len(entries); off += entriesPerPage {
		end := off + entriesPerPage
		if end > len(entries) {
			end = len(entries)
		}
		fr, err := st.pool.Allocate()
		if err != nil {
			if prev != nil {
				prev.Unpin()
			}
			return InvalidPage, err
		}
		writePage(fr.Data(), entries[off:end])
		fr.MarkDirty()
		if prev != nil {
			// Link the previous page to this one.
			byteOrder.PutUint32(prev.Data()[:4], uint32(fr.ID()))
			prev.MarkDirty()
			prev.Unpin()
		} else {
			first = fr.ID()
		}
		prev = fr
	}
	if prev != nil {
		prev.Unpin()
	}
	return first, nil
}

func writePage(buf []byte, entries []Entry) {
	byteOrder.PutUint32(buf[:4], uint32(InvalidPage))
	byteOrder.PutUint32(buf[4:8], uint32(len(entries)))
	off := pageHeaderSize
	for _, e := range entries {
		byteOrder.PutUint32(buf[off:], uint32(e.Candidate))
		byteOrder.PutUint64(buf[off+4:], math.Float64bits(e.S))
		byteOrder.PutUint64(buf[off+12:], math.Float64bits(e.D))
		off += entrySize
	}
}

// NumSubregions returns the number of stored subregion lists.
func (st *SubregionStore) NumSubregions() int { return st.m }

// List reads back the entries of subregion j, following the page chain
// through the buffer pool.
func (st *SubregionStore) List(j int) ([]Entry, error) {
	if j < 0 || j >= st.m {
		return nil, fmt.Errorf("pager: subregion %d outside [0, %d)", j, st.m)
	}
	var out []Entry
	for id := st.dir[j]; id != InvalidPage; {
		fr, err := st.pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		buf := fr.Data()
		next := PageID(byteOrder.Uint32(buf[:4]))
		count := int(byteOrder.Uint32(buf[4:8]))
		if count > entriesPerPage {
			fr.Unpin()
			return nil, fmt.Errorf("pager: corrupt page %d: %d records", id, count)
		}
		off := pageHeaderSize
		for r := 0; r < count; r++ {
			out = append(out, Entry{
				Candidate: int32(byteOrder.Uint32(buf[off:])),
				S:         math.Float64frombits(byteOrder.Uint64(buf[off+4:])),
				D:         math.Float64frombits(byteOrder.Uint64(buf[off+12:])),
			})
			off += entrySize
		}
		fr.Unpin()
		id = next
	}
	return out, nil
}

// RSUpperBounds computes the RS verifier's upper bounds straight from the
// disk-resident lists — 1 − s_iM per candidate — demonstrating that the
// verifiers run unchanged over the paged layout.
func (st *SubregionStore) RSUpperBounds(numCandidates int) ([]float64, error) {
	out := make([]float64, numCandidates)
	for i := range out {
		out[i] = 1
	}
	if st.m == 0 {
		return out, nil
	}
	rightmost, err := st.List(st.m - 1)
	if err != nil {
		return nil, err
	}
	for _, e := range rightmost {
		if int(e.Candidate) < numCandidates {
			out[e.Candidate] = 1 - e.S
		}
	}
	return out, nil
}
