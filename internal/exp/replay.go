package exp

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// ReplayConfig drives a workload replay: a recorded (or generated) stream of
// query points evaluated against one dataset, once as sequential singles and
// once through the batch path at each requested batch size.
type ReplayConfig struct {
	// Dataset is the dataset to serve.
	Dataset *uncertain.Dataset
	// Queries is the recorded query workload.
	Queries []float64
	// BatchSizes lists the batch sizes to replay; empty means 1, 8, 64, 512.
	BatchSizes []int
	// Workers caps the batch worker pool; 0 means GOMAXPROCS.
	Workers int
	// Constraint is the C-PNN constraint; the zero value means the paper's
	// P=0.3, Δ=0.01.
	Constraint verify.Constraint
	// Strategy is the evaluation strategy (default VR).
	Strategy core.Strategy
}

// ReplayRow is the measured outcome of one batch size.
type ReplayRow struct {
	// BatchSize is the number of queries per CPNNBatch call (1 = the
	// loop-of-singles baseline).
	BatchSize int
	// Total is the wall time to drain the whole workload.
	Total time.Duration
	// P50, P95 and P99 are per-query completion latencies: a query finishes
	// when its batch does, so latency is its batch's wall time.
	P50, P95, P99 time.Duration
	// Ratio is the amortization: singles total time over this size's total.
	Ratio float64
	// AllocsPerQuery counts heap allocations per query at this batch size.
	AllocsPerQuery float64
	// FilterTime, DeriveTime and VerifyTime split the engine time into the
	// paper's evaluation phases (filtering, bound derivation,
	// verification+refinement — core.Stats.PhaseDurations), summed over the
	// whole workload at this batch size.
	FilterTime, DeriveTime, VerifyTime time.Duration
}

// ReplayReport is the outcome of a workload replay.
type ReplayReport struct {
	Queries int
	Answers int
	Rows    []ReplayRow
}

// Replay runs the workload at every batch size and reports latency
// percentiles and amortization ratios against the sequential-singles
// baseline. Answer sets are identical across sizes by construction (the
// batch path shares the single-query evaluation code); Replay cross-checks
// the total answer count to make sure.
func Replay(cfg ReplayConfig) (*ReplayReport, error) {
	if cfg.Dataset == nil || cfg.Dataset.Len() == 0 {
		return nil, fmt.Errorf("exp: replay needs a non-empty dataset")
	}
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("exp: replay needs at least one query")
	}
	if cfg.Constraint == (verify.Constraint{}) {
		cfg.Constraint = verify.Constraint{P: 0.3, Delta: 0.01}
	}
	if err := cfg.Constraint.Validate(); err != nil {
		return nil, err
	}
	sizes := cfg.BatchSizes
	if len(sizes) == 0 {
		sizes = []int{1, 8, 64, 512}
	}
	for _, b := range sizes {
		if b < 1 {
			return nil, fmt.Errorf("exp: batch size %d < 1", b)
		}
	}
	eng, err := core.NewEngine(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	opt := core.BatchOptions{
		Options: core.Options{Strategy: cfg.Strategy},
		Workers: cfg.Workers,
	}

	report := &ReplayReport{Queries: len(cfg.Queries)}

	// Baseline: sequential singles, timed per query.
	var lat stats.Sample
	var ms0, ms1 runtime.MemStats
	var sFilter, sDerive, sVerify time.Duration
	runtime.ReadMemStats(&ms0)
	singleStart := time.Now()
	baseAnswers := 0
	for _, q := range cfg.Queries {
		qStart := time.Now()
		res, err := eng.CPNN(q, cfg.Constraint, opt.Options)
		if err != nil {
			return nil, err
		}
		lat.AddDuration(time.Since(qStart))
		baseAnswers += len(res.Answers)
		f, d, v := res.Stats.PhaseDurations()
		sFilter, sDerive, sVerify = sFilter+f, sDerive+d, sVerify+v
	}
	singlesTotal := time.Since(singleStart)
	runtime.ReadMemStats(&ms1)
	singlesAllocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(len(cfg.Queries))
	report.Answers = baseAnswers

	for _, size := range sizes {
		if size == 1 {
			report.Rows = append(report.Rows, ReplayRow{
				BatchSize:      1,
				Total:          singlesTotal,
				P50:            msToDur(lat.Percentile(50)),
				P95:            msToDur(lat.Percentile(95)),
				P99:            msToDur(lat.Percentile(99)),
				Ratio:          1,
				AllocsPerQuery: singlesAllocs,
				FilterTime:     sFilter,
				DeriveTime:     sDerive,
				VerifyTime:     sVerify,
			})
			continue
		}
		var batchLat stats.Sample
		var bFilter, bDerive, bVerify time.Duration
		answers := 0
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for off := 0; off < len(cfg.Queries); off += size {
			end := off + size
			if end > len(cfg.Queries) {
				end = len(cfg.Queries)
			}
			br, err := eng.CPNNBatch(cfg.Queries[off:end], cfg.Constraint, opt)
			if err != nil {
				return nil, err
			}
			// Every query of a batch completes when the batch does.
			for range br.Results {
				batchLat.AddDuration(br.Stats.Wall)
			}
			for _, r := range br.Results {
				answers += len(r.Answers)
			}
			f, d, v := br.Stats.Aggregate.PhaseDurations()
			bFilter, bDerive, bVerify = bFilter+f, bDerive+d, bVerify+v
		}
		total := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if answers != baseAnswers {
			return nil, fmt.Errorf("exp: batch size %d returned %d answers, singles returned %d",
				size, answers, baseAnswers)
		}
		report.Rows = append(report.Rows, ReplayRow{
			BatchSize:      size,
			Total:          total,
			P50:            msToDur(batchLat.Percentile(50)),
			P95:            msToDur(batchLat.Percentile(95)),
			P99:            msToDur(batchLat.Percentile(99)),
			Ratio:          float64(singlesTotal) / float64(total),
			AllocsPerQuery: float64(ms1.Mallocs-ms0.Mallocs) / float64(len(cfg.Queries)),
			FilterTime:     bFilter,
			DeriveTime:     bDerive,
			VerifyTime:     bVerify,
		})
	}
	return report, nil
}

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// Print renders the replay report as an aligned table.
func (r *ReplayReport) Print(w io.Writer) {
	fmt.Fprintf(w, "# Workload replay: %d queries, %d answers\n", r.Queries, r.Answers)
	fmt.Fprintf(w, "%10s %12s %12s %12s %12s %12s %8s %24s\n",
		"batch", "total", "queries/s", "p50", "p95", "p99", "ratio", "filter/derive/verify")
	for _, row := range r.Rows {
		qps := float64(r.Queries) / row.Total.Seconds()
		phases := fmt.Sprintf("%s/%s/%s",
			row.FilterTime.Round(time.Microsecond), row.DeriveTime.Round(time.Microsecond),
			row.VerifyTime.Round(time.Microsecond))
		fmt.Fprintf(w, "%10d %12s %12.0f %12s %12s %12s %8.2f %24s\n",
			row.BatchSize, row.Total.Round(time.Microsecond), qps,
			row.P50.Round(time.Microsecond), row.P95.Round(time.Microsecond),
			row.P99.Round(time.Microsecond), row.Ratio, phases)
	}
}
