package exp

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/pdf"
	"repro/internal/replica"
	"repro/internal/stats"
	"repro/internal/store"
)

// ReplicaConfig drives the replication experiment: a primary whose WAL is
// shipped to a follower over a loopback TCP stream, measured two ways per
// commit batch size — bulk catch-up throughput (a fresh follower replaying
// the primary's whole history) and steady-state replication latency (commit
// on the primary → the change being servable from the follower's view).
type ReplicaConfig struct {
	// Objects is the primary's dataset size replayed during catch-up; 0
	// means 5000.
	Objects int
	// Commits is the number of steady-state update commits measured per
	// batch size; 0 means 50.
	Commits int
	// BatchSizes lists ops-per-commit sizes; empty means 1, 4, 16, 64, 256.
	// The size shapes both phases: history is written (and therefore
	// shipped) in records of this many ops, and each steady-state commit
	// carries this many updates.
	BatchSizes []int
	// Seed makes the workload deterministic (sub-seeded per batch size).
	Seed int64
	// Dir is the working directory; empty means a temp dir removed
	// afterwards. Each batch size gets fresh primary/follower subdirs.
	Dir string
}

// ReplicaRow is the measured outcome of one batch size.
type ReplicaRow struct {
	// BatchSize is the ops per commit (and so per shipped WAL record).
	BatchSize int
	// CatchUpOpsPerSec is bulk replay throughput: objects transferred and
	// durably applied per second while a fresh follower drains the
	// primary's history.
	CatchUpOpsPerSec float64
	// CatchUpTime is the wall time of that first full catch-up.
	CatchUpTime time.Duration
	// SteadyOpsPerSec is update throughput through replication: ops per
	// second with every commit waited on until the follower serves it.
	SteadyOpsPerSec float64
	// P50, P95 and P99 are steady-state replication latencies: primary
	// Apply returning → the committed version published in the follower's
	// MVCC view (network, replay, fsync and view install included).
	P50, P95, P99 time.Duration
	// RecordsShipped and BytesShipped are the primary server's totals for
	// this batch size's whole run.
	RecordsShipped, BytesShipped uint64
	// Reconnects and SnapshotBootstraps must be zero on a healthy loopback
	// run; non-zero values mean the numbers include recovery work.
	Reconnects, SnapshotBootstraps uint64
}

// ReplicaReport is the outcome of the replication experiment.
type ReplicaReport struct {
	Objects, Commits int
	Rows             []ReplicaRow
}

// RunReplica runs the replication experiment.
func RunReplica(cfg ReplicaConfig) (*ReplicaReport, error) {
	if cfg.Objects == 0 {
		cfg.Objects = 5000
	}
	if cfg.Commits == 0 {
		cfg.Commits = 50
	}
	sizes := cfg.BatchSizes
	if len(sizes) == 0 {
		sizes = []int{1, 4, 16, 64, 256}
	}
	for _, b := range sizes {
		if b < 1 {
			return nil, fmt.Errorf("exp: batch size %d < 1", b)
		}
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "cpnn-replica-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	report := &ReplicaReport{Objects: cfg.Objects, Commits: cfg.Commits}
	for _, size := range sizes {
		row, err := runReplicaSize(dir, size, cfg)
		if err != nil {
			return nil, fmt.Errorf("exp: batch=%d: %w", size, err)
		}
		report.Rows = append(report.Rows, *row)
	}
	return report, nil
}

func runReplicaSize(dir string, size int, cfg ReplicaConfig) (*ReplicaRow, error) {
	pdir := fmt.Sprintf("%s/primary-%d", dir, size)
	fdir := fmt.Sprintf("%s/follower-%d", dir, size)
	p, err := store.Open(pdir, store.Options{NoSync: true})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	const domain = 10000.0
	iv := func(rng *rand.Rand) (float64, float64) {
		lo := rng.Float64() * domain
		return lo, lo + 1 + rng.Float64()*24
	}

	// History: the full dataset committed in size-sized batches, so the
	// shipped log has the record granularity under test.
	rng := rand.New(rand.NewSource(cfg.Seed + int64(size)))
	var ids []uint64
	for off := 0; off < cfg.Objects; off += size {
		n := min(size, cfg.Objects-off)
		batch := make([]store.Op, n)
		for i := range batch {
			lo, hi := iv(rng)
			batch[i] = store.InsertObject(pdf.MustUniform(lo, hi))
		}
		res, err := p.Apply(batch)
		if err != nil {
			return nil, err
		}
		ids = append(ids, res.IDs...)
	}

	srv, err := replica.StartServer(replica.ServerConfig{Store: p, Addr: "127.0.0.1:0"})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	f, err := store.OpenFollower(fdir, store.Options{NoSync: true})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Catch-up phase: attach and drain the whole history.
	catchStart := time.Now()
	fol, err := replica.StartFollower(replica.FollowerConfig{Store: f, Primary: srv.Addr()})
	if err != nil {
		return nil, err
	}
	defer fol.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	err = fol.WaitCaughtUp(ctx)
	cancel()
	if err != nil {
		return nil, err
	}
	catchUp := time.Since(catchStart)

	// Steady state: commit updates on the primary and time each one until
	// the follower's served view carries it. The watch feed timestamps the
	// arrival; a large buffer keeps the feed from gapping mid-measurement.
	feed, err := f.Watch(cfg.Commits + 16)
	if err != nil {
		return nil, err
	}
	defer feed.Close()

	var lat stats.Sample
	steadyStart := time.Now()
	for c := 0; c < cfg.Commits; c++ {
		batch := make([]store.Op, size)
		for i := range batch {
			lo, hi := iv(rng)
			batch[i] = store.UpdateObject(ids[rng.Intn(len(ids))], pdf.MustUniform(lo, hi))
		}
		res, err := p.Apply(batch)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		for {
			ev, ok := <-feed.C()
			if !ok {
				return nil, fmt.Errorf("follower feed closed mid-run")
			}
			if ev.View != nil && ev.View.Seq >= res.Seq {
				lat.AddDuration(time.Since(t0))
				break
			}
		}
	}
	steady := time.Since(steadyStart)

	fst := fol.Stats()
	sst := srv.Stats()
	return &ReplicaRow{
		BatchSize:          size,
		CatchUpOpsPerSec:   float64(cfg.Objects) / catchUp.Seconds(),
		CatchUpTime:        catchUp,
		SteadyOpsPerSec:    float64(size*cfg.Commits) / steady.Seconds(),
		P50:                msToDur(lat.Percentile(50)),
		P95:                msToDur(lat.Percentile(95)),
		P99:                msToDur(lat.Percentile(99)),
		RecordsShipped:     sst.RecordsShipped,
		BytesShipped:       sst.BytesShipped,
		Reconnects:         fst.Reconnects,
		SnapshotBootstraps: fst.SnapshotBootstraps,
	}, nil
}

// Print renders the replication report as an aligned table.
func (r *ReplicaReport) Print(w io.Writer) {
	fmt.Fprintf(w, "# WAL-shipped replication: %d-object catch-up, then %d update commits per size (loopback TCP, follower fsync off)\n",
		r.Objects, r.Commits)
	fmt.Fprintf(w, "%10s %14s %12s %12s %12s %12s %12s %10s %12s\n",
		"batch", "catchup ops/s", "catchup", "steady ops/s", "p50", "p95", "p99",
		"records", "bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d %14.0f %12s %12.0f %12s %12s %12s %10d %12d\n",
			row.BatchSize, row.CatchUpOpsPerSec, row.CatchUpTime.Round(time.Millisecond),
			row.SteadyOpsPerSec,
			row.P50.Round(10*time.Microsecond), row.P95.Round(10*time.Microsecond),
			row.P99.Round(10*time.Microsecond),
			row.RecordsShipped, row.BytesShipped)
	}
}

// Records converts a replication report to bench records.
func (r *ReplicaReport) Records() []BenchRecord {
	out := make([]BenchRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, BenchRecord{
			Name:      fmt.Sprintf("replica/batch=%d", row.BatchSize),
			OpsPerSec: row.SteadyOpsPerSec,
			P50Ms:     ms(row.P50),
			P95Ms:     ms(row.P95),
			P99Ms:     ms(row.P99),
			Extra: map[string]float64{
				"catchup_ops_per_sec": row.CatchUpOpsPerSec,
				"catchup_ms":          ms(row.CatchUpTime),
				"records_shipped":     float64(row.RecordsShipped),
				"bytes_shipped":       float64(row.BytesShipped),
				"reconnects":          float64(row.Reconnects),
				"snapshot_bootstraps": float64(row.SnapshotBootstraps),
			},
		})
	}
	return out
}
