package exp

import (
	"bytes"
	"strings"
	"testing"
)

// small returns a configuration fast enough for unit testing: a reduced
// dataset and few queries. Shape assertions must hold even at this scale.
func small() Config {
	return Config{Queries: 6, Seed: 1, DatasetN: 8000, BasicSteps: 400, GaussBars: 60}
}

func TestFigure9Shape(t *testing.T) {
	tab, err := Figure9(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Basic time grows with dataset size; by the largest size it must
	// dominate filtering (the paper's crossover claim).
	first, err := tab.Cell(0, "basic_ms")
	if err != nil {
		t.Fatal(err)
	}
	last, err := tab.Cell(len(tab.Rows)-1, "basic_ms")
	if err != nil {
		t.Fatal(err)
	}
	if last <= first {
		t.Errorf("Basic did not grow with dataset size: %g -> %g", first, last)
	}
	lastFilter, err := tab.Cell(len(tab.Rows)-1, "filter_ms")
	if err != nil {
		t.Fatal(err)
	}
	if last < lastFilter {
		t.Errorf("Basic (%g ms) should dominate filtering (%g ms) at 20k objects", last, lastFilter)
	}
}

func TestFigure10Shape(t *testing.T) {
	tab, err := Figure10(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At every P: VR <= Refine <= Basic. Both VR and Refine average a
	// fraction of a millisecond per query here, so one scheduler preemption
	// (test packages run concurrently, possibly on one core) shifts a cell
	// by ~0.1ms; the absolute slop must swallow that while still failing if
	// VR ever degenerates to full refinement (a multi-ms jump).
	for r := range tab.Rows {
		basic, _ := tab.Cell(r, "basic_ms")
		refine, _ := tab.Cell(r, "refine_ms")
		vr, _ := tab.Cell(r, "vr_ms")
		if basic < refine {
			t.Errorf("row %d: Basic %g < Refine %g", r, basic, refine)
		}
		if vr > refine*1.5+0.25 {
			t.Errorf("row %d: VR %g not faster than Refine %g", r, vr, refine)
		}
	}
	// VR at P=0.3 (row 1) is meaningfully cheaper than Basic.
	basic, _ := tab.Cell(1, "basic_ms")
	vr, _ := tab.Cell(1, "vr_ms")
	if vr > basic/2 {
		t.Errorf("VR %g not well below Basic %g at P=0.3", vr, basic)
	}
}

func TestFigure11Shape(t *testing.T) {
	tab, err := Figure11(small())
	if err != nil {
		t.Fatal(err)
	}
	// Refinement cost decreases with P and is ~zero at P=1.
	firstRefine, _ := tab.Cell(0, "refine_ms")
	lastRefine, _ := tab.Cell(len(tab.Rows)-1, "refine_ms")
	if lastRefine > firstRefine+1e-9 {
		t.Errorf("refinement at P=1 (%g) exceeds P=0.1 (%g)", lastRefine, firstRefine)
	}
}

func TestFigure12Shape(t *testing.T) {
	cfg := small()
	cfg.Queries = 20
	tab, err := Figure12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		rs, _ := tab.Cell(r, "after_RS")
		lsr, _ := tab.Cell(r, "after_LSR")
		usr, _ := tab.Cell(r, "after_USR")
		// Later verifiers only ever shrink the unknown set.
		if lsr > rs+1e-9 || usr > lsr+1e-9 {
			t.Errorf("row %d: unknown fractions not monotone: %g %g %g", r, rs, lsr, usr)
		}
		if rs < 0 || rs > 1 {
			t.Errorf("row %d: fraction %g outside [0,1]", r, rs)
		}
	}
	// The RS curve decreases with P (easier to fail objects at high P).
	first, _ := tab.Cell(0, "after_RS")
	last, _ := tab.Cell(len(tab.Rows)-1, "after_RS")
	if last > first {
		t.Errorf("after_RS increased with P: %g -> %g", first, last)
	}
}

func TestFigure13Shape(t *testing.T) {
	cfg := small()
	cfg.Queries = 15
	tab, err := Figure13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Larger tolerance can only finish more queries (monotone
	// non-decreasing fractions).
	prev := -1.0
	for r := range tab.Rows {
		f, _ := tab.Cell(r, "finished_frac")
		if f < prev-1e-9 {
			t.Errorf("finished fraction decreased at row %d: %g -> %g", r, prev, f)
		}
		if f < 0 || f > 1 {
			t.Errorf("fraction %g outside [0,1]", f)
		}
		prev = f
	}
}

func TestFigure14Shape(t *testing.T) {
	cfg := small()
	cfg.Queries = 2
	cfg.DatasetN = 5000
	cfg.BasicSteps = 2000
	tab, err := Figure14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// VR must beat Basic at every threshold on Gaussian data.
	for r := range tab.Rows {
		basic, _ := tab.Cell(r, "basic_ms")
		vr, _ := tab.Cell(r, "vr_ms")
		if vr > basic {
			t.Errorf("row %d: VR %g slower than Basic %g on Gaussian data", r, vr, basic)
		}
	}
}

func TestTablePrintAndCell(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"x", "y"},
		Rows:    [][]float64{{1, 2}, {3, 4}},
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3.0000") {
		t.Errorf("Print output malformed:\n%s", out)
	}
	if v, err := tab.Cell(1, "y"); err != nil || v != 4 {
		t.Errorf("Cell = %g, %v", v, err)
	}
	if _, err := tab.Cell(0, "nope"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tab.Cell(9, "x"); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, fig := range []int{9, 10, 11, 12, 13, 14} {
		if Registry[fig] == nil {
			t.Errorf("figure %d missing from registry", fig)
		}
	}
}
