package exp

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/monitor"
	"repro/internal/pdf"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/verify"
)

// MonitorConfig drives the continuous-monitoring experiment: a store full of
// uncertain objects, a population of standing C-PNN queries, and a stream of
// localized update commits. The measured quantities are the re-evaluated
// query fraction (vs. the naive re-evaluate-every-query-per-commit baseline)
// and the commit-to-quiescence push latency.
type MonitorConfig struct {
	// Objects is the dataset size; 0 means 10000.
	Objects int
	// Queries is the standing-query count; 0 means 200.
	Queries int
	// Commits is the number of update commits per batch size; 0 means 100.
	Commits int
	// BatchSizes lists ops-per-commit sizes; empty means 1, 4, 16, 64, 256.
	BatchSizes []int
	// Seed makes the workload deterministic: the dataset, the query
	// population and each batch size's update stream are all derived from it,
	// each from its own sub-seed, so one row's workload never depends on
	// which other sizes ran before it.
	Seed int64
	// Baseline disables the monitor's incremental evaluation path (every
	// re-evaluation runs from scratch) — the comparison the incremental rows
	// are measured against.
	Baseline bool
	// Dir is the store directory; empty means a temp dir removed afterwards.
	Dir string
}

// MonitorRow is the measured outcome of one batch size.
type MonitorRow struct {
	// BatchSize is the ops per commit.
	BatchSize int
	// OpsPerSec is update throughput through monitor quiescence (commit,
	// spatial join, triggered re-evaluations and pushes all included).
	OpsPerSec float64
	// ActualReevals counts triggered re-evaluations; NaiveReevals is what
	// re-evaluate-all would have done (queries × commits).
	ActualReevals, NaiveReevals uint64
	// ReevalFraction is ActualReevals / NaiveReevals.
	ReevalFraction float64
	// P50, P95 and P99 are per-commit push latencies: the time from Apply
	// returning until every affected standing answer is re-evaluated and
	// pushed.
	P50, P95, P99 time.Duration
	// AllocsPerCommit is the allocation count per commit, pruning included.
	AllocsPerCommit float64
	// EarlyExits counts re-evaluations the incremental path resolved without
	// running the verifier; FoldsReused and FoldsDerived count candidate
	// distance pdfs served from per-query state vs. recomputed. All zero in
	// baseline mode.
	EarlyExits, FoldsReused, FoldsDerived uint64
}

// MonitorReport is the outcome of the monitoring experiment.
type MonitorReport struct {
	Objects, Queries, Commits int
	Baseline                  bool
	Rows                      []MonitorRow
}

// RunMonitor runs the continuous-monitoring experiment.
func RunMonitor(cfg MonitorConfig) (*MonitorReport, error) {
	if cfg.Objects == 0 {
		cfg.Objects = 10000
	}
	if cfg.Queries == 0 {
		cfg.Queries = 200
	}
	if cfg.Commits == 0 {
		cfg.Commits = 100
	}
	sizes := cfg.BatchSizes
	if len(sizes) == 0 {
		sizes = []int{1, 4, 16, 64, 256}
	}
	for _, b := range sizes {
		if b < 1 {
			return nil, fmt.Errorf("exp: batch size %d < 1", b)
		}
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "cpnn-monitor-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	s, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	const domain = 10000.0
	// Every phase draws from its own sub-seeded stream (see MonitorConfig.Seed).
	iv := func(rng *rand.Rand) (float64, float64) {
		lo := rng.Float64() * domain
		return lo, lo + 1 + rng.Float64()*24 // mean length ~13, like Long Beach
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := make([]store.Op, cfg.Objects)
	for i := range ops {
		lo, hi := iv(rng)
		ops[i] = store.InsertObject(pdf.MustUniform(lo, hi))
	}
	res, err := s.Apply(ops)
	if err != nil {
		return nil, err
	}
	ids := res.IDs

	m, err := monitor.New(monitor.Config{Store: s, DisableIncremental: cfg.Baseline})
	if err != nil {
		return nil, err
	}
	defer m.Close()
	qrng := rand.New(rand.NewSource(cfg.Seed + 1))
	for i := 0; i < cfg.Queries; i++ {
		if _, err := m.Register(monitor.Spec{
			Kind: monitor.KindCPNN, Q: qrng.Float64() * domain,
			Constraint: verify.Constraint{P: 0.3, Delta: 0.01},
		}); err != nil {
			return nil, err
		}
	}

	report := &MonitorReport{
		Objects: cfg.Objects, Queries: cfg.Queries, Commits: cfg.Commits,
		Baseline: cfg.Baseline,
	}
	for _, size := range sizes {
		srng := rand.New(rand.NewSource(cfg.Seed + 2 + int64(size)))
		before := m.Stats()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		var lat stats.Sample
		start := time.Now()
		for c := 0; c < cfg.Commits; c++ {
			batch := make([]store.Op, size)
			for i := range batch {
				lo, hi := iv(srng)
				batch[i] = store.UpdateObject(ids[srng.Intn(len(ids))], pdf.MustUniform(lo, hi))
			}
			cStart := time.Now()
			if _, err := s.Apply(batch); err != nil {
				return nil, err
			}
			if err := m.Sync(30 * time.Second); err != nil {
				return nil, err
			}
			lat.AddDuration(time.Since(cStart))
		}
		total := time.Since(start)
		runtime.ReadMemStats(&ms1)
		after := m.Stats()

		actual := after.ReEvals - before.ReEvals
		naive := uint64(cfg.Queries) * uint64(cfg.Commits)
		row := MonitorRow{
			BatchSize:       size,
			OpsPerSec:       float64(size*cfg.Commits) / total.Seconds(),
			ActualReevals:   actual,
			NaiveReevals:    naive,
			P50:             msToDur(lat.Percentile(50)),
			P95:             msToDur(lat.Percentile(95)),
			P99:             msToDur(lat.Percentile(99)),
			AllocsPerCommit: float64(ms1.Mallocs-ms0.Mallocs) / float64(cfg.Commits),
			EarlyExits:      after.EarlyExits - before.EarlyExits,
			FoldsReused:     after.IncrementalReused - before.IncrementalReused,
			FoldsDerived:    after.IncrementalDerived - before.IncrementalDerived,
		}
		if naive > 0 {
			row.ReevalFraction = float64(actual) / float64(naive)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// Print renders the monitoring report as an aligned table.
func (r *MonitorReport) Print(w io.Writer) {
	mode := "incremental"
	if r.Baseline {
		mode = "from-scratch baseline"
	}
	fmt.Fprintf(w, "# Continuous monitoring (%s): %d objects, %d standing C-PNN queries, %d update commits per size\n",
		mode, r.Objects, r.Queries, r.Commits)
	fmt.Fprintf(w, "%10s %10s %10s %12s %12s %12s %12s %14s %10s %10s\n",
		"batch", "ops/s", "reeval%", "reevals", "naive", "p50", "p95", "allocs/commit",
		"earlyexit", "reuse%")
	for _, row := range r.Rows {
		reuse := 0.0
		if t := row.FoldsReused + row.FoldsDerived; t > 0 {
			reuse = 100 * float64(row.FoldsReused) / float64(t)
		}
		fmt.Fprintf(w, "%10d %10.0f %9.2f%% %12d %12d %12s %12s %14.0f %10d %9.1f%%\n",
			row.BatchSize, row.OpsPerSec, 100*row.ReevalFraction,
			row.ActualReevals, row.NaiveReevals,
			row.P50.Round(time.Microsecond), row.P95.Round(time.Microsecond),
			row.AllocsPerCommit, row.EarlyExits, reuse)
	}
}
