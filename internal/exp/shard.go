package exp

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// ShardConfig drives the scatter-gather serving experiment: one dataset split
// into K spatial shards per shard count, then a C-PNN query workload pushed
// through the router's two-phase bound/gather pass. The headline metric is
// the gather fan-out fraction — what share of the shards each query actually
// had to read — since that is the whole point of spatial sharding: the
// filter bound turns a K-way scatter into a mostly-1-shard gather.
type ShardConfig struct {
	// Objects is the dataset size; 0 means 20000.
	Objects int
	// Queries is the workload size per shard count; 0 means 400.
	Queries int
	// ShardCounts lists the K values measured; empty means 1, 2, 4, 8.
	ShardCounts []int
	// Seed makes the dataset and workload deterministic.
	Seed int64
	// Dir is the working directory; empty means a temp dir removed
	// afterwards. Each shard count gets a fresh cluster subdir.
	Dir string
}

// ShardRow is the measured outcome of one shard count.
type ShardRow struct {
	// Shards is K, the member count of this row's cluster.
	Shards int
	// SplitTime is the wall time of partitioning + bulk-loading the cluster.
	SplitTime time.Duration
	// OpsPerSec is end-to-end query throughput through the router (bound
	// phase, gather phase, merged single-engine verification).
	OpsPerSec float64
	// P50, P95 and P99 are end-to-end query latencies.
	P50, P95, P99 time.Duration
	// MeanFanout is gather contacts per query — how many shards the average
	// query read after bound pruning.
	MeanFanout float64
	// FanoutFraction is MeanFanout / K, the pruning headline: 1.0 means the
	// bound never pruned anything, 1/K means every query read one shard.
	FanoutFraction float64
	// Retries counts gather rounds repeated because a concurrent write moved
	// the bound (zero on this read-only workload).
	Retries uint64
	// Skew is max shard population × K / total — 1.0 is a perfect split.
	Skew float64
	// Candidates is the mean merged candidate-set size per query, the
	// evidence that the merged mini-dataset stays tiny at every K.
	Candidates float64
}

// ShardReport is the outcome of the scatter-gather experiment.
type ShardReport struct {
	Objects, Queries int
	Rows             []ShardRow
}

// RunShard runs the scatter-gather serving experiment.
func RunShard(cfg ShardConfig) (*ShardReport, error) {
	if cfg.Objects == 0 {
		cfg.Objects = 20000
	}
	if cfg.Queries == 0 {
		cfg.Queries = 400
	}
	counts := cfg.ShardCounts
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	for _, k := range counts {
		if k < 1 {
			return nil, fmt.Errorf("exp: shard count %d < 1", k)
		}
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "cpnn-shard-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	opt := uncertain.LongBeachOptions(cfg.Seed)
	opt.N = cfg.Objects
	ds, err := uncertain.GenerateUniform(opt)
	if err != nil {
		return nil, err
	}

	report := &ShardReport{Objects: cfg.Objects, Queries: cfg.Queries}
	for _, k := range counts {
		row, err := runShardCount(dir, k, ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("exp: shards=%d: %w", k, err)
		}
		report.Rows = append(report.Rows, *row)
	}
	return report, nil
}

func runShardCount(dir string, k int, ds *uncertain.Dataset, cfg ShardConfig) (*ShardRow, error) {
	// The view hands CreateCluster the same stable IDs a single store's
	// dataset load would assign, so every shard count serves identical IDs.
	ids := make([]uint64, ds.Len())
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	view := &store.View{Dataset: ds, IDs: ids, NextID: uint64(ds.Len()) + 1}

	splitStart := time.Now()
	cluster, err := shard.CreateCluster(fmt.Sprintf("%s/k=%d", dir, k), k, view, store.Options{NoSync: true})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	rt, err := cluster.Router()
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	split := time.Since(splitStart)

	dom := ds.Domain()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
	c := verify.Constraint{P: 0.3, Delta: 0.01}

	var lat, cand stats.Sample
	start := time.Now()
	for q := 0; q < cfg.Queries; q++ {
		pt := dom.Lo + rng.Float64()*(dom.Hi-dom.Lo)
		t0 := time.Now()
		g, err := rt.Gather(context.Background(), pt, 1)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(g.View.Dataset)
		if err != nil {
			return nil, err
		}
		res, err := eng.CPNN(pt, c, core.Options{})
		if err != nil {
			return nil, err
		}
		lat.AddDuration(time.Since(t0))
		cand.Add(float64(res.Stats.Candidates))
	}
	total := time.Since(start)

	st := rt.Stats()
	row := &ShardRow{
		Shards:     k,
		SplitTime:  split,
		OpsPerSec:  float64(cfg.Queries) / total.Seconds(),
		P50:        msToDur(lat.Percentile(50)),
		P95:        msToDur(lat.Percentile(95)),
		P99:        msToDur(lat.Percentile(99)),
		Retries:    st.Retries,
		Candidates: cand.Mean(),
	}
	if st.Queries > 0 {
		row.MeanFanout = float64(st.GatherContacts) / float64(st.Queries)
		row.FanoutFraction = row.MeanFanout / float64(k)
	}
	if st.Objects > 0 {
		maxShard := 0
		for _, n := range st.PerShard {
			maxShard = max(maxShard, n)
		}
		row.Skew = float64(maxShard) * float64(k) / float64(st.Objects)
	}
	return row, nil
}

// Print renders the scatter-gather report as an aligned table.
func (r *ShardReport) Print(w io.Writer) {
	fmt.Fprintf(w, "# Scatter-gather serving: %d objects, %d C-PNN queries per shard count (STR-packed spatial shards)\n",
		r.Objects, r.Queries)
	fmt.Fprintf(w, "%8s %12s %12s %10s %10s %10s %10s %9s %7s %10s\n",
		"shards", "split", "ops/s", "p50", "p95", "p99", "fan-out", "fraction", "skew", "candidates")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d %12s %12.0f %10s %10s %10s %10.2f %9.2f %7.2f %10.1f\n",
			row.Shards, row.SplitTime.Round(time.Millisecond), row.OpsPerSec,
			row.P50.Round(10*time.Microsecond), row.P95.Round(10*time.Microsecond),
			row.P99.Round(10*time.Microsecond),
			row.MeanFanout, row.FanoutFraction, row.Skew, row.Candidates)
	}
}

// Records converts a scatter-gather report to bench records.
func (r *ShardReport) Records() []BenchRecord {
	out := make([]BenchRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, BenchRecord{
			Name:      fmt.Sprintf("shard/k=%d", row.Shards),
			OpsPerSec: row.OpsPerSec,
			P50Ms:     ms(row.P50),
			P95Ms:     ms(row.P95),
			P99Ms:     ms(row.P99),
			Extra: Extra{
				"mean_fanout":     row.MeanFanout,
				"fanout_fraction": row.FanoutFraction,
				"split_ms":        ms(row.SplitTime),
				"retries":         float64(row.Retries),
				"skew":            row.Skew,
				"candidates":      row.Candidates,
			},
		})
	}
	return out
}
