package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/uncertain"
)

func TestReplay(t *testing.T) {
	ds, err := uncertain.GenerateUniform(uncertain.GenOptions{
		N: 3000, Domain: 1000, MeanLen: 5, MinLen: 0.5, MaxLen: 30, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Replay(ReplayConfig{
		Dataset:    ds,
		Queries:    uncertain.QueryWorkload(64, 1000, 5),
		BatchSizes: []int{1, 8, 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Queries != 64 || len(report.Rows) != 3 {
		t.Fatalf("report shape: %+v", report)
	}
	for _, row := range report.Rows {
		if row.Total <= 0 || row.Ratio <= 0 {
			t.Errorf("batch size %d: non-positive total %v or ratio %g", row.BatchSize, row.Total, row.Ratio)
		}
		if row.P50 > row.P95 || row.P95 > row.P99 {
			t.Errorf("batch size %d: percentiles not monotone: %v %v %v",
				row.BatchSize, row.P50, row.P95, row.P99)
		}
	}
	if report.Rows[0].Ratio != 1 {
		t.Errorf("size-1 ratio %g, want 1", report.Rows[0].Ratio)
	}
	var buf bytes.Buffer
	report.Print(&buf)
	if !strings.Contains(buf.String(), "ratio") {
		t.Errorf("printed report missing header: %s", buf.String())
	}
}

func TestReplayValidation(t *testing.T) {
	ds, err := uncertain.GenerateUniform(uncertain.GenOptions{
		N: 100, Domain: 100, MeanLen: 5, MinLen: 0.5, MaxLen: 30, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(ReplayConfig{Dataset: ds}); err == nil {
		t.Error("replay accepted an empty workload")
	}
	if _, err := Replay(ReplayConfig{Queries: []float64{1}}); err == nil {
		t.Error("replay accepted a nil dataset")
	}
	if _, err := Replay(ReplayConfig{Dataset: ds, Queries: []float64{1}, BatchSizes: []int{0}}); err == nil {
		t.Error("replay accepted batch size 0")
	}
}
