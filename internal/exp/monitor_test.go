package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunMonitorSmall runs a scaled-down monitoring experiment end to end
// and sanity-checks the measured series plus the bench-record conversion.
func TestRunMonitorSmall(t *testing.T) {
	report, err := RunMonitor(MonitorConfig{
		Objects:    500,
		Queries:    40,
		Commits:    10,
		BatchSizes: []int{1, 8},
		Seed:       1,
		Dir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(report.Rows))
	}
	for _, row := range report.Rows {
		if row.NaiveReevals != 40*10 {
			t.Fatalf("naive = %d, want 400", row.NaiveReevals)
		}
		if row.ActualReevals > row.NaiveReevals {
			t.Fatalf("actual %d > naive %d", row.ActualReevals, row.NaiveReevals)
		}
		if row.OpsPerSec <= 0 || row.P95 < row.P50 {
			t.Fatalf("bad row %+v", row)
		}
	}
	// Localized single-op commits must re-evaluate a minority of queries.
	if frac := report.Rows[0].ReevalFraction; frac >= 0.5 {
		t.Fatalf("re-eval fraction %.2f at batch 1, want < 0.5", frac)
	}

	var sb strings.Builder
	report.Print(&sb)
	if !strings.Contains(sb.String(), "reeval%") {
		t.Fatalf("table output:\n%s", sb.String())
	}

	// JSON records round-trip with the documented fields.
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteBenchJSON(path, report.Records()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Records []BenchRecord `json:"records"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Records) != 2 || parsed.Records[0].Name != "monitor/batch=1" {
		t.Fatalf("records = %+v", parsed.Records)
	}
	if parsed.Records[0].OpsPerSec <= 0 {
		t.Fatalf("ops/s missing: %+v", parsed.Records[0])
	}
	if _, ok := parsed.Records[0].Extra["reeval_fraction"]; !ok {
		t.Fatalf("extra metrics missing: %+v", parsed.Records[0])
	}
}

// TestReplayRecords checks the replay → bench-record conversion carries the
// allocation metric.
func TestReplayRecords(t *testing.T) {
	r := &ReplayReport{Queries: 100, Rows: []ReplayRow{{BatchSize: 1, Total: 1e9, Ratio: 1, AllocsPerQuery: 42}}}
	recs := r.Records()
	if len(recs) != 1 || recs[0].Name != "replay/batch=1" || recs[0].AllocsPerOp != 42 {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].OpsPerSec != 100 {
		t.Fatalf("ops/s = %g, want 100", recs[0].OpsPerSec)
	}
}
