package exp

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/pager"
	"repro/internal/pdf"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/verify"
)

// CapacityConfig drives the capacity experiment: datasets of increasing size
// are loaded into a store whose page-cache budget is pinned small, flattened
// into the paged base checkpoint, and then measured under update commits and
// C-PNN queries. The claim under test is twofold — the store serves datasets
// whose base file exceeds the cache budget (payloads fault in and out on
// demand), and commit latency tracks the batch size Δ, not the dataset size n.
type CapacityConfig struct {
	// Sizes lists dataset sizes n; empty means 10000, 30000, 100000.
	Sizes []int
	// Commits is the number of update commits measured per size; 0 means 200.
	Commits int
	// BatchSize is the updates per commit (the Δ in O(Δ)); 0 means 8.
	BatchSize int
	// Queries is the number of C-PNN probe queries per size; 0 means 50.
	Queries int
	// CacheBytes is the fixed page-cache budget shared by every size; 0 means
	// 256 KiB (64 pages), far below the base file of the larger sizes.
	CacheBytes int64
	// Seed makes the workload deterministic (sub-seeded per size).
	Seed int64
	// Dir is the working directory; empty means a temp dir removed
	// afterwards. Each size gets a fresh subdir.
	Dir string
}

// CapacityRow is the measured outcome of one dataset size.
type CapacityRow struct {
	// Objects is the dataset size n.
	Objects int
	// BasePages and BaseBytes describe the paged checkpoint after load: the
	// on-disk footprint the cache budget must serve from.
	BasePages int
	BaseBytes int64
	// CacheBytes is the effective page-cache budget.
	CacheBytes int64
	// LoadTime covers inserting all n objects; CheckpointTime is the flatten
	// that moved them behind the page cache.
	LoadTime, CheckpointTime time.Duration
	// CommitOpsPerSec is update throughput (BatchSize ops per commit); the
	// percentiles are per-commit Apply latencies. Flatness of CommitP50
	// across rows is the O(Δ) commit claim.
	CommitOpsPerSec      float64
	CommitP50, CommitP95 time.Duration
	// QueryP50 and QueryP95 are C-PNN probe latencies against the cold-ish
	// cache (queries fault candidate payloads from the base file).
	QueryP50, QueryP95 time.Duration
	// Hits, Misses and Evictions are the page-cache totals for the whole
	// run at this size; Misses and Evictions must be non-zero once the base
	// outgrows the budget.
	Hits, Misses, Evictions uint64
}

// CapacityReport is the outcome of the capacity experiment.
type CapacityReport struct {
	Commits, BatchSize, Queries int
	CacheBytes                  int64
	Rows                        []CapacityRow
}

// RunCapacity runs the capacity experiment.
func RunCapacity(cfg CapacityConfig) (*CapacityReport, error) {
	sizes := cfg.Sizes
	if len(sizes) == 0 {
		sizes = []int{10000, 30000, 100000}
	}
	for _, n := range sizes {
		if n < 1 {
			return nil, fmt.Errorf("exp: dataset size %d < 1", n)
		}
	}
	if cfg.Commits == 0 {
		cfg.Commits = 200
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.Queries == 0 {
		cfg.Queries = 50
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 256 << 10
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "cpnn-capacity-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	report := &CapacityReport{
		Commits: cfg.Commits, BatchSize: cfg.BatchSize,
		Queries: cfg.Queries, CacheBytes: cfg.CacheBytes,
	}
	for _, n := range sizes {
		row, err := runCapacitySize(dir, n, cfg)
		if err != nil {
			return nil, fmt.Errorf("exp: n=%d: %w", n, err)
		}
		report.Rows = append(report.Rows, *row)
	}
	return report, nil
}

func runCapacitySize(dir string, n int, cfg CapacityConfig) (*CapacityRow, error) {
	s, err := store.Open(fmt.Sprintf("%s/cap-%d", dir, n), store.Options{
		NoSync:          true,
		CheckpointBytes: -1, // flatten only when this harness says so
		CacheBytes:      cfg.CacheBytes,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	const domain = 100000.0
	rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
	iv := func() (float64, float64) {
		lo := rng.Float64() * domain
		return lo, lo + 1 + rng.Float64()*24
	}

	// Load: n objects in bulk batches, then one flatten so every payload
	// lives behind the page cache and the overlay is empty. Histogram pdfs
	// keep the per-object payload non-trivial (a uniform is 17 bytes).
	loadStart := time.Now()
	var ids []uint64
	for off := 0; off < n; off += 512 {
		batch := make([]store.Op, min(512, n-off))
		for i := range batch {
			lo, hi := iv()
			w := make([]float64, 7)
			for j := range w {
				w[j] = 1 + rng.Float64()
			}
			batch[i] = store.InsertObject(pdf.MustHistogram(
				[]float64{lo, lo + (hi-lo)/4, lo + (hi-lo)/2, lo + 3*(hi-lo)/4,
					lo + 7*(hi-lo)/8, hi - (hi-lo)/16, hi - (hi-lo)/32, hi}, w))
		}
		res, err := s.Apply(batch)
		if err != nil {
			return nil, err
		}
		ids = append(ids, res.IDs...)
	}
	loadTime := time.Since(loadStart)

	ckptStart := time.Now()
	if err := s.Checkpoint(); err != nil {
		return nil, err
	}
	ckptTime := time.Since(ckptStart)

	// Commit phase: the same Δ-sized update batches at every n. Each commit
	// pays the WAL append plus an O(Δ log n) view materialization; nothing
	// here may scale with n. The unmeasured warm-up commits absorb the
	// post-flatten transient (allocator and GC churn from dropping n resident
	// payloads) so the percentiles describe steady state.
	var commitLat stats.Sample
	for c := 0; c < 32; c++ {
		batch := make([]store.Op, cfg.BatchSize)
		for i := range batch {
			lo, hi := iv()
			batch[i] = store.UpdateObject(ids[rng.Intn(len(ids))], pdf.MustUniform(lo, hi))
		}
		if _, err := s.Apply(batch); err != nil {
			return nil, err
		}
	}
	commitStart := time.Now()
	for c := 0; c < cfg.Commits; c++ {
		batch := make([]store.Op, cfg.BatchSize)
		for i := range batch {
			lo, hi := iv()
			batch[i] = store.UpdateObject(ids[rng.Intn(len(ids))], pdf.MustUniform(lo, hi))
		}
		t0 := time.Now()
		if _, err := s.Apply(batch); err != nil {
			return nil, err
		}
		commitLat.AddDuration(time.Since(t0))
	}
	commitTotal := time.Since(commitStart)

	// Query phase: C-PNN probes at random points. Candidate payloads fault
	// from the base file through the (small) page cache.
	var queryLat stats.Sample
	for q := 0; q < cfg.Queries; q++ {
		v := s.View()
		eng, err := core.NewEngineWithIndex(v.Dataset, v.Index)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := eng.CPNN(rng.Float64()*domain, verify.Constraint{P: 0.3, Delta: 0.01}, core.Options{}); err != nil {
			return nil, err
		}
		queryLat.AddDuration(time.Since(t0))
	}

	st := s.Stats()
	return &CapacityRow{
		Objects:         n,
		BasePages:       st.BasePages,
		BaseBytes:       int64(st.BasePages) * pager.PageSize,
		CacheBytes:      st.CacheBytes,
		LoadTime:        loadTime,
		CheckpointTime:  ckptTime,
		CommitOpsPerSec: float64(cfg.BatchSize*cfg.Commits) / commitTotal.Seconds(),
		CommitP50:       msToDur(commitLat.Percentile(50)),
		CommitP95:       msToDur(commitLat.Percentile(95)),
		QueryP50:        msToDur(queryLat.Percentile(50)),
		QueryP95:        msToDur(queryLat.Percentile(95)),
		Hits:            st.PageCache.Hits,
		Misses:          st.PageCache.Misses,
		Evictions:       st.PageCache.Evictions,
	}, nil
}

// Print renders the capacity report as an aligned table.
func (r *CapacityReport) Print(w io.Writer) {
	fmt.Fprintf(w, "# capacity: page cache pinned at %d bytes; %d commits of %d updates and %d C-PNN probes per size (fsync off)\n",
		r.CacheBytes, r.Commits, r.BatchSize, r.Queries)
	fmt.Fprintf(w, "%10s %12s %12s %12s %14s %12s %12s %12s %12s %10s\n",
		"n", "base bytes", "load", "flatten", "commit ops/s", "commit p50", "commit p95",
		"query p50", "query p95", "evictions")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d %12d %12s %12s %14.0f %12s %12s %12s %12s %10d\n",
			row.Objects, row.BaseBytes,
			row.LoadTime.Round(time.Millisecond), row.CheckpointTime.Round(time.Millisecond),
			row.CommitOpsPerSec,
			row.CommitP50.Round(10*time.Microsecond), row.CommitP95.Round(10*time.Microsecond),
			row.QueryP50.Round(10*time.Microsecond), row.QueryP95.Round(10*time.Microsecond),
			row.Evictions)
	}
}

// Records converts a capacity report to bench records.
func (r *CapacityReport) Records() []BenchRecord {
	out := make([]BenchRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, BenchRecord{
			Name:      fmt.Sprintf("capacity/n=%d", row.Objects),
			OpsPerSec: row.CommitOpsPerSec,
			P50Ms:     ms(row.CommitP50),
			P95Ms:     ms(row.CommitP95),
			Extra: Extra{
				"base_pages":         float64(row.BasePages),
				"base_bytes":         float64(row.BaseBytes),
				"cache_budget_bytes": float64(row.CacheBytes),
				"load_ms":            ms(row.LoadTime),
				"flatten_ms":         ms(row.CheckpointTime),
				"query_p50_ms":       ms(row.QueryP50),
				"query_p95_ms":       ms(row.QueryP95),
				"cache_hits":         float64(row.Hits),
				"cache_misses":       float64(row.Misses),
				"cache_evictions":    float64(row.Evictions),
			},
		})
	}
	return out
}
