// Package exp is the benchmark harness that regenerates every figure of the
// paper's evaluation section (§V). Each FigureN function runs the
// corresponding experiment and returns a Table whose rows mirror the series
// the paper plots:
//
//	Figure 9  — Basic vs Filtering time across dataset sizes
//	Figure 10 — query time vs threshold P for Basic / Refine / VR
//	Figure 11 — VR phase breakdown (filter / verify / refine) vs P
//	Figure 12 — fraction of unknown objects after RS / L-SR / U-SR vs P
//	Figure 13 — fraction of queries finished after verification vs Δ
//	Figure 14 — Gaussian-pdf query time vs P for Basic / Refine / VR
//
// Absolute times differ from the paper's 2008 Java/1.83GHz testbed; the
// comparisons of interest are the orderings, ratios and crossovers, which
// EXPERIMENTS.md tracks against the paper's reported values.
package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// Config scales an experiment run. The zero value is completed by
// withDefaults to a paper-comparable configuration.
type Config struct {
	// Queries is the number of query points averaged per data point (the
	// paper uses 100).
	Queries int
	// Seed drives dataset generation and query placement.
	Seed int64
	// DatasetN overrides the object count; 0 means the Long-Beach 53,144.
	DatasetN int
	// BasicSteps caps the Simpson resolution of the Basic baseline; 0 means
	// an automatic choice per experiment.
	BasicSteps int
	// GaussBars is the histogram resolution for Gaussian pdfs; 0 means 300
	// (paper §V.5).
	GaussBars int
	// Tolerance is the default Δ; the paper's default is 0.01.
	Tolerance float64
}

func (c Config) withDefaults() Config {
	if c.Queries == 0 {
		c.Queries = 100
	}
	if c.GaussBars == 0 {
		c.GaussBars = 300
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.01
	}
	return c
}

// Table is a printable experiment result: one labeled column per series.
type Table struct {
	// Title names the experiment.
	Title string
	// Columns holds the column headers; Columns[0] labels the x axis.
	Columns []string
	// Rows holds one row per x value.
	Rows [][]float64
}

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		for _, v := range row {
			fmt.Fprintf(w, "%14.4f", v)
		}
		fmt.Fprintln(w)
	}
}

// Cell returns the value at (row, column label) for tests and report
// generation.
func (t *Table) Cell(row int, column string) (float64, error) {
	for ci, c := range t.Columns {
		if c == column {
			if row < 0 || row >= len(t.Rows) {
				return 0, fmt.Errorf("exp: row %d outside table %q", row, t.Title)
			}
			return t.Rows[row][ci], nil
		}
	}
	return 0, fmt.Errorf("exp: no column %q in table %q", column, t.Title)
}

// longBeach creates the (possibly size-overridden) Long-Beach-like dataset.
func longBeach(cfg Config) (*uncertain.Dataset, uncertain.GenOptions, error) {
	opt := uncertain.LongBeachOptions(cfg.Seed)
	if cfg.DatasetN > 0 {
		opt.N = cfg.DatasetN
	}
	ds, err := uncertain.GenerateUniform(opt)
	return ds, opt, err
}

// Figure9 compares the cost of the filtering phase against the Basic
// strategy across dataset sizes (paper Fig. 9: Basic dominates beyond a few
// thousand objects).
func Figure9(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{1000, 2000, 5000, 10000, 20000}
	t := &Table{
		Title:   "Figure 9: Basic vs Filtering time (ms/query) across dataset size",
		Columns: []string{"size", "filter_ms", "basic_ms"},
	}
	for _, n := range sizes {
		opt := uncertain.LongBeachOptions(cfg.Seed)
		opt.N = n
		ds, err := uncertain.GenerateUniform(opt)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(ds)
		if err != nil {
			return nil, err
		}
		var filterMS, basicMS stats.Sample
		for _, q := range uncertain.QueryWorkload(cfg.Queries, opt.Domain, cfg.Seed+1) {
			res, err := eng.CPNN(q, verify.Constraint{P: 0.3, Delta: cfg.Tolerance},
				core.Options{Strategy: core.Basic, BasicSteps: cfg.BasicSteps})
			if err != nil {
				return nil, err
			}
			filterMS.AddDuration(res.Stats.FilterTime)
			// Basic's cost is everything after filtering.
			basicMS.AddDuration(res.Stats.InitTime + res.Stats.RefineTime)
		}
		t.Rows = append(t.Rows, []float64{float64(n), filterMS.Mean(), basicMS.Mean()})
	}
	return t, nil
}

// Figure10 measures total query time against the threshold P for the three
// strategies (paper Fig. 10: VR ≈ 16% of Basic at P=0.3; 5× faster than
// Refine at P=0.3, 40× at P=0.7).
func Figure10(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ds, opt, err := longBeach(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ds)
	if err != nil {
		return nil, err
	}
	ps := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	t := &Table{
		Title:   "Figure 10: query time (ms) vs threshold P",
		Columns: []string{"P", "basic_ms", "refine_ms", "vr_ms"},
	}
	queries := uncertain.QueryWorkload(cfg.Queries, opt.Domain, cfg.Seed+1)
	for _, p := range ps {
		c := verify.Constraint{P: p, Delta: cfg.Tolerance}
		row := []float64{p}
		for _, strat := range []core.Strategy{core.Basic, core.Refine, core.VR} {
			var ms stats.Sample
			for _, q := range queries {
				res, err := eng.CPNN(q, c, core.Options{Strategy: strat, BasicSteps: cfg.BasicSteps})
				if err != nil {
					return nil, err
				}
				ms.AddDuration(res.Stats.Total())
			}
			row = append(row, ms.Mean())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure11 decomposes VR query time into filtering, verification (including
// initialization, as the paper does) and refinement (paper Fig. 11:
// filtering flat, verification negligible, refinement vanishing past
// P = 0.3).
func Figure11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ds, opt, err := longBeach(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ds)
	if err != nil {
		return nil, err
	}
	ps := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1}
	t := &Table{
		Title:   "Figure 11: VR phase breakdown (ms) vs threshold P",
		Columns: []string{"P", "filter_ms", "verify_ms", "refine_ms"},
	}
	queries := uncertain.QueryWorkload(cfg.Queries, opt.Domain, cfg.Seed+1)
	for _, p := range ps {
		c := verify.Constraint{P: p, Delta: cfg.Tolerance}
		var fMS, vMS, rMS stats.Sample
		for _, q := range queries {
			res, err := eng.CPNN(q, c, core.Options{Strategy: core.VR})
			if err != nil {
				return nil, err
			}
			fMS.AddDuration(res.Stats.FilterTime)
			vMS.AddDuration(res.Stats.InitTime + res.Stats.VerifyTime)
			rMS.AddDuration(res.Stats.RefineTime)
		}
		t.Rows = append(t.Rows, []float64{p, fMS.Mean(), vMS.Mean(), rMS.Mean()})
	}
	return t, nil
}

// Figure12 reports the fraction of candidate objects still unknown after
// each verifier in the chain, versus P (paper Fig. 12: RS leaves ~75% at
// P=0.1; U-SR leaves ~15%).
func Figure12(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ds, opt, err := longBeach(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ds)
	if err != nil {
		return nil, err
	}
	ps := []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}
	t := &Table{
		Title:   "Figure 12: fraction unknown after RS / L-SR / U-SR vs threshold P",
		Columns: []string{"P", "after_RS", "after_LSR", "after_USR"},
	}
	queries := uncertain.QueryWorkload(cfg.Queries, opt.Domain, cfg.Seed+1)
	for _, p := range ps {
		c := verify.Constraint{P: p, Delta: cfg.Tolerance}
		var frac [3]stats.Sample
		for _, q := range queries {
			res, err := eng.CPNN(q, c, core.Options{Strategy: core.VR})
			if err != nil {
				return nil, err
			}
			if res.Stats.Candidates == 0 {
				continue
			}
			total := float64(res.Stats.Candidates)
			// Early exit leaves shorter traces; unknown stays at the last
			// recorded value (necessarily zero) for skipped verifiers.
			last := 0.0
			for v := 0; v < 3; v++ {
				if v < len(res.Stats.UnknownAfter) {
					last = float64(res.Stats.UnknownAfter[v])
				}
				frac[v].Add(last / total)
			}
		}
		t.Rows = append(t.Rows, []float64{p, frac[0].Mean(), frac[1].Mean(), frac[2].Mean()})
	}
	return t, nil
}

// Figure13 reports the fraction of queries that finish at verification
// (no refinement needed) as the tolerance Δ grows (paper Fig. 13: ~10 %
// more finished queries at Δ=0.16 than at Δ=0).
//
// The threshold is P = 0.15 rather than the 0.3 default: on the synthetic
// workload the verifier bound widths of marginal objects at P = 0.3 sit just
// above the paper's swept Δ range (≥ 0.2), which would flatten the curve; at
// P = 0.15 the widths straddle the sweep and the paper's effect size
// (+10 % finished queries at Δ = 0.16) is reproduced. EXPERIMENTS.md
// discusses the discrepancy.
func Figure13(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ds, opt, err := longBeach(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ds)
	if err != nil {
		return nil, err
	}
	deltas := []float64{0, 0.04, 0.08, 0.12, 0.16, 0.2}
	t := &Table{
		Title:   "Figure 13: fraction of queries finished after verification vs tolerance",
		Columns: []string{"delta", "finished_frac"},
	}
	queries := uncertain.QueryWorkload(cfg.Queries, opt.Domain, cfg.Seed+1)
	for _, d := range deltas {
		finished := 0
		for _, q := range queries {
			res, err := eng.CPNN(q, verify.Constraint{P: 0.15, Delta: d},
				core.Options{Strategy: core.VR})
			if err != nil {
				return nil, err
			}
			if res.Stats.RefinedObjects == 0 {
				finished++
			}
		}
		t.Rows = append(t.Rows, []float64{d, float64(finished) / float64(len(queries))})
	}
	return t, nil
}

// Figure14 repeats the strategy comparison on Gaussian uncertainty pdfs
// (300-bar histograms, paper §V.5). Gaussian distance distributions carry
// two orders of magnitude more breakpoints, which is precisely the cost the
// verifiers avoid (paper Fig. 14, log-scale).
func Figure14(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	opt := uncertain.LongBeachOptions(cfg.Seed)
	if cfg.DatasetN > 0 {
		opt.N = cfg.DatasetN
	}
	ds, err := uncertain.GenerateGaussianAnalytic(opt)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ds)
	if err != nil {
		return nil, err
	}
	ps := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1}
	t := &Table{
		Title:   "Figure 14: Gaussian-pdf query time (ms) vs threshold P",
		Columns: []string{"P", "basic_ms", "refine_ms", "vr_ms"},
	}
	basicSteps := cfg.BasicSteps
	if basicSteps == 0 {
		// Resolving every kink of ~96 folded 300-bar cdfs needs tens of
		// thousands of Simpson steps; this is what makes Basic hopeless on
		// Gaussian data.
		basicSteps = 20000
	}
	queries := uncertain.QueryWorkload(cfg.Queries, opt.Domain, cfg.Seed+1)
	for _, p := range ps {
		c := verify.Constraint{P: p, Delta: cfg.Tolerance}
		row := []float64{p}
		for _, strat := range []core.Strategy{core.Basic, core.Refine, core.VR} {
			var ms stats.Sample
			for _, q := range queries {
				o := core.Options{Strategy: strat, Bins: cfg.GaussBars, BasicSteps: basicSteps}
				res, err := eng.CPNN(q, c, o)
				if err != nil {
					return nil, err
				}
				ms.AddDuration(res.Stats.Total())
			}
			row = append(row, ms.Mean())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Registry maps figure numbers to their runners for the CLI.
var Registry = map[int]func(Config) (*Table, error){
	9:  Figure9,
	10: Figure10,
	11: Figure11,
	12: Figure12,
	13: Figure13,
	14: Figure14,
}

// RunAll executes every figure in ascending order, printing to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, fig := range []int{9, 10, 11, 12, 13, 14} {
		start := time.Now()
		table, err := Registry[fig](cfg)
		if err != nil {
			return fmt.Errorf("figure %d: %w", fig, err)
		}
		table.Print(w)
		fmt.Fprintf(w, "# figure %d completed in %v\n\n", fig, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
