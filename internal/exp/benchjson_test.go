package exp

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// The BENCH_*.json trajectory files are compared byte-for-byte across PRs,
// so the writer must be deterministic down to key order and float syntax.
// This golden pins the exact bytes a fixed record set produces.
func TestWriteBenchJSONGolden(t *testing.T) {
	records := []BenchRecord{
		{
			Name:        "shard/k=4",
			OpsPerSec:   1234.5,
			P50Ms:       0.25,
			P95Ms:       1.5,
			P99Ms:       3.75,
			AllocsPerOp: 42,
			// Keys deliberately unsorted in source order.
			Extra: Extra{"skew": 1.02, "fanout_fraction": 0.34, "mean_fanout": 1.36},
		},
		{Name: "shard/k=1", OpsPerSec: 2000},
	}
	const golden = `{
  "records": [
    {
      "name": "shard/k=4",
      "ops_per_sec": 1234.5,
      "p50_ms": 0.25,
      "p95_ms": 1.5,
      "p99_ms": 3.75,
      "allocs_per_op": 42,
      "extra": {
        "fanout_fraction": 0.34,
        "mean_fanout": 1.36,
        "skew": 1.02
      }
    },
    {
      "name": "shard/k=1",
      "ops_per_sec": 2000,
      "p50_ms": 0,
      "p95_ms": 0,
      "p99_ms": 0,
      "allocs_per_op": 0
    }
  ]
}
`
	path := filepath.Join(t.TempDir(), "bench.json")
	for i := 0; i < 2; i++ { // twice: key order must not vary run to run
		if err := WriteBenchJSON(path, records); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != golden {
			t.Fatalf("write %d: bench JSON differs from golden:\n--- got ---\n%s\n--- want ---\n%s", i, got, golden)
		}
	}
}

// Non-numbers cannot appear in a trajectory file: the marshaller must refuse
// them rather than let encoding/json error with a less useful message (or a
// future encoder silently emit null).
func TestExtraRejectsNonFinite(t *testing.T) {
	for name, v := range map[string]float64{"nan": math.NaN(), "inf": math.Inf(1)} {
		if _, err := (Extra{"m": v}).MarshalJSON(); err == nil {
			t.Errorf("%s: MarshalJSON accepted %g", name, v)
		}
	}
}
