package exp

import (
	"io"
	"strings"
	"testing"
)

// TestRunCapacitySmall runs the capacity experiment end to end at toy sizes:
// the point is the plumbing (paged base built, cache stats plumbed through,
// records shaped for BENCH json), not the timings.
func TestRunCapacitySmall(t *testing.T) {
	report, err := RunCapacity(CapacityConfig{
		Sizes:      []int{200, 600},
		Commits:    6,
		BatchSize:  4,
		Queries:    4,
		CacheBytes: 1, // clamps up to the pool's minimum budget
		Seed:       7,
		Dir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(report.Rows))
	}
	for _, row := range report.Rows {
		if row.BasePages == 0 || row.BaseBytes == 0 {
			t.Errorf("n=%d: no paged base after flatten (%d pages)", row.Objects, row.BasePages)
		}
		if row.CacheBytes < 1 {
			t.Errorf("n=%d: cache budget %d", row.Objects, row.CacheBytes)
		}
		if row.CommitP50 <= 0 || row.QueryP50 <= 0 {
			t.Errorf("n=%d: empty latency samples (commit %v, query %v)",
				row.Objects, row.CommitP50, row.QueryP50)
		}
	}
	// 600 histogram payloads overflow the minimum 8-page budget, so the
	// larger size must have faulted and evicted.
	last := report.Rows[1]
	if last.BaseBytes <= last.CacheBytes {
		t.Fatalf("n=%d base (%d bytes) fits the budget (%d bytes); test needs overflow",
			last.Objects, last.BaseBytes, last.CacheBytes)
	}
	if last.Misses == 0 || last.Evictions == 0 {
		t.Errorf("n=%d: base beyond budget but misses=%d evictions=%d",
			last.Objects, last.Misses, last.Evictions)
	}

	report.Print(io.Discard)
	recs := report.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if !strings.HasPrefix(recs[0].Name, "capacity/n=") {
		t.Errorf("record name %q", recs[0].Name)
	}
	for _, key := range []string{"base_bytes", "cache_budget_bytes", "query_p50_ms", "cache_evictions"} {
		if _, ok := recs[1].Extra[key]; !ok {
			t.Errorf("record extra missing %q", key)
		}
	}
}

func TestRunCapacityRejectsBadSize(t *testing.T) {
	if _, err := RunCapacity(CapacityConfig{Sizes: []int{0}}); err == nil {
		t.Fatal("size 0 accepted")
	}
}
