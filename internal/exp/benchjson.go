package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"
)

// BenchRecord is one machine-readable benchmark result — the format of
// cpnn-bench -json and of the repo's recorded BENCH_*.json trajectory files,
// so successive PRs can compare numbers without parsing tables.
type BenchRecord struct {
	// Name identifies the series and point, e.g. "replay/batch=64" or
	// "monitor/batch=16".
	Name string `json:"name"`
	// OpsPerSec is the primary throughput metric (queries/s or update ops/s).
	OpsPerSec float64 `json:"ops_per_sec"`
	// P50Ms, P95Ms and P99Ms are latency percentiles in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// AllocsPerOp counts heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra carries series-specific metrics (amortization ratio, re-eval
	// fraction, ...).
	Extra Extra `json:"extra,omitempty"`
}

// Extra is a metric map whose JSON form is deterministic by construction:
// keys ascending, values in Go's shortest round-trip float syntax. The
// recorded BENCH_*.json files are diffed across PRs, so their byte layout
// must not depend on map iteration order or encoder internals — this
// marshaller makes that a property of the type rather than a behavior
// inherited from encoding/json.
type Extra map[string]float64

// MarshalJSON renders the map with sorted keys.
func (e Extra) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(e))
	for k := range e {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		v := e[k]
		if v != v || v > maxJSONFloat || v < -maxJSONFloat {
			return nil, fmt.Errorf("exp: metric %q is %g, not a JSON number", k, v)
		}
		buf.Write(strconv.AppendFloat(nil, v, 'g', -1, 64))
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

const maxJSONFloat = 1.7976931348623157e308

// benchFile is the on-disk shape of a -json output.
type benchFile struct {
	Records []BenchRecord `json:"records"`
}

// WriteBenchJSON writes records to path as indented JSON.
func WriteBenchJSON(path string, records []BenchRecord) error {
	data, err := json.MarshalIndent(benchFile{Records: records}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Records converts a replay report to bench records.
func (r *ReplayReport) Records() []BenchRecord {
	out := make([]BenchRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, BenchRecord{
			Name:        fmt.Sprintf("replay/batch=%d", row.BatchSize),
			OpsPerSec:   float64(r.Queries) / row.Total.Seconds(),
			P50Ms:       ms(row.P50),
			P95Ms:       ms(row.P95),
			P99Ms:       ms(row.P99),
			AllocsPerOp: row.AllocsPerQuery,
			Extra: Extra{
				"ratio":           row.Ratio,
				"phase_filter_ms": ms(row.FilterTime),
				"phase_derive_ms": ms(row.DeriveTime),
				"phase_verify_ms": ms(row.VerifyTime),
			},
		})
	}
	return out
}

// Records converts a monitoring report to bench records.
func (r *MonitorReport) Records() []BenchRecord {
	suffix := ""
	if r.Baseline {
		suffix = "/scratch"
	}
	out := make([]BenchRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, BenchRecord{
			Name:        fmt.Sprintf("monitor/batch=%d%s", row.BatchSize, suffix),
			OpsPerSec:   row.OpsPerSec,
			P50Ms:       ms(row.P50),
			P95Ms:       ms(row.P95),
			P99Ms:       ms(row.P99),
			AllocsPerOp: row.AllocsPerCommit,
			Extra: Extra{
				"reeval_fraction": row.ReevalFraction,
				"standing":        float64(r.Queries),
				"early_exits":     float64(row.EarlyExits),
				"folds_reused":    float64(row.FoldsReused),
				"folds_derived":   float64(row.FoldsDerived),
			},
		})
	}
	return out
}
