package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// DefaultSlowLogEntries is the ring capacity binaries use unless told
// otherwise.
const DefaultSlowLogEntries = 128

// SlowEntry is one admitted slow request.
type SlowEntry struct {
	Time       time.Time `json:"time"`
	TraceID    string    `json:"trace_id,omitempty"`
	Endpoint   string    `json:"endpoint"`
	Query      string    `json:"query,omitempty"`
	Status     int       `json:"status"`
	DurationMs float64   `json:"duration_ms"`
	// Attrs carries the phase breakdown and cache/fan-out labels captured
	// during evaluation.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// SlowLog is a fixed-capacity ring of the most recent requests slower than
// a threshold, served at GET /debug/slowlog. A zero threshold disables
// admission. Safe on nil.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	ring      []SlowEntry
	next      int
	n         int
	total     uint64
}

// NewSlowLog returns a slow log holding the last capacity entries
// (DefaultSlowLogEntries when <= 0) at or above threshold.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogEntries
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, capacity)}
}

// Threshold returns the admission threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe admits the entry when the log is enabled and the request met the
// threshold, reporting whether it was admitted.
func (l *SlowLog) Observe(e SlowEntry) bool {
	if l == nil || l.threshold <= 0 {
		return false
	}
	if time.Duration(e.DurationMs*float64(time.Millisecond)) < l.threshold {
		return false
	}
	l.mu.Lock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
	return true
}

// Entries returns up to n admitted entries, newest first (n <= 0 means
// all retained).
func (l *SlowLog) Entries(n int) []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.n {
		n = l.n
	}
	out := make([]SlowEntry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Total returns how many entries were ever admitted (including those the
// ring has since overwritten).
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// ServeHTTP serves GET /debug/slowlog?n= as JSON, newest entry first.
func (l *SlowLog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if p, err := strconv.Atoi(v); err == nil {
			n = p
		}
	}
	entries := l.Entries(n)
	if entries == nil {
		entries = []SlowEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"threshold_ms": float64(l.Threshold()) / float64(time.Millisecond),
		"total":        l.Total(),
		"entries":      entries,
	})
}
