package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets spans the query-latency range this engine lives in: tens of
// microseconds for a warm cache hit up to seconds for a cold scan of a
// large dataset.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// LagBuckets suits replica apply-lag and monitor push-latency observations:
// sub-millisecond when healthy, up to a minute when a follower is
// re-bootstrapping.
var LagBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// FanoutBuckets counts members contacted per scatter-gather query.
var FanoutBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64}

// Histogram is a fixed-bucket Prometheus histogram with lock-free
// observation. The zero value is unusable; construct with NewHistogram or
// HistogramVec.With. All methods are safe on nil.
type Histogram struct {
	name    string
	help    string
	labels  string // pre-rendered `k="v",...` (no braces), "" when unlabeled
	buckets []float64
	counts  []atomic.Uint64 // len(buckets)+1; last is +Inf
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
	count   atomic.Uint64
}

// NewHistogram returns an unlabeled histogram. buckets must be sorted
// ascending; nil means DefBuckets.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &Histogram{
		name:    name,
		help:    help,
		buckets: buckets,
		counts:  make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one value (seconds for latency histograms). Safe on nil;
// NaN and negative values are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || v < 0 {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// WritePrometheus renders the full family in text exposition format.
func (h *Histogram) WritePrometheus(w io.Writer) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", h.name, h.help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", h.name)
	h.writeSeries(w)
}

// writeSeries renders the _bucket/_sum/_count series without the header
// (HistogramVec shares one header across children).
func (h *Histogram) writeSeries(w io.Writer) {
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", h.name, h.labelPrefix(), formatBound(ub), cum)
	}
	cum += h.counts[len(h.buckets)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, h.labelPrefix(), cum)
	sum := math.Float64frombits(h.sumBits.Load())
	if h.labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", h.name, sum)
		fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", h.name, h.labels, sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", h.name, h.labels, h.count.Load())
	}
}

func (h *Histogram) labelPrefix() string {
	if h.labels == "" {
		return ""
	}
	return h.labels + ","
}

// formatBound renders a bucket upper bound the way Prometheus clients do:
// shortest round-trippable decimal.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramVec is a histogram family partitioned by a fixed label set.
// Children are created on first With and rendered under one shared
// HELP/TYPE header. Safe on nil.
type HistogramVec struct {
	name       string
	help       string
	labelNames []string
	buckets    []float64

	mu       sync.RWMutex
	children map[string]*Histogram
	order    []string // insertion order for stable rendering
}

// NewHistogramVec returns a labeled histogram family. buckets nil means
// DefBuckets.
func NewHistogramVec(name, help string, labelNames []string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{
		name:       name,
		help:       help,
		labelNames: labelNames,
		buckets:    buckets,
		children:   make(map[string]*Histogram),
	}
}

// With returns the child for the given label values (one per label name, in
// order), creating it on first use. Safe on nil (returns nil, whose Observe
// is a no-op).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	var b strings.Builder
	for i, name := range v.labelNames {
		if i > 0 {
			b.WriteByte(',')
		}
		val := ""
		if i < len(values) {
			val = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", name, val)
	}
	key := b.String()
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[key]; h != nil {
		return h
	}
	h = NewHistogram(v.name, v.help, v.buckets)
	h.labels = key
	v.children[key] = h
	v.order = append(v.order, key)
	return h
}

// WritePrometheus renders every child under one family header. A vec with
// no children renders nothing (an empty family is indistinguishable from an
// absent one). Safe on nil.
func (v *HistogramVec) WritePrometheus(w io.Writer) {
	if v == nil {
		return
	}
	v.mu.RLock()
	order := append([]string(nil), v.order...)
	children := make([]*Histogram, 0, len(order))
	for _, key := range order {
		children = append(children, v.children[key])
	}
	v.mu.RUnlock()
	if len(children) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", v.name, v.help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", v.name)
	for _, h := range children {
		h.writeSeries(w)
	}
}

// Collector is anything that renders Prometheus text format.
type Collector interface {
	WritePrometheus(w io.Writer)
}

// Registry is an ordered list of collectors a /metrics handler appends to
// its hand-rolled families. Safe on nil.
type Registry struct {
	mu sync.Mutex
	cs []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector. Safe on nil registry; nil collectors are
// ignored.
func (r *Registry) Register(c Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.cs = append(r.cs, c)
	r.mu.Unlock()
}

// WritePrometheus renders every registered collector in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	cs := append([]Collector(nil), r.cs...)
	r.mu.Unlock()
	for _, c := range cs {
		c.WritePrometheus(w)
	}
}
