// Package obs is the serving stack's observability layer: Dapper-style
// in-process tracing with cross-hop propagation, hand-rolled Prometheus
// histograms, structured logging defaults on log/slog, a ring-buffer
// slow-query log, and build identification.
//
// The pieces are deliberately dependency-free and nil-tolerant: every
// component accepts a nil *Tracer, *Histogram, *SlowLog or Registry and
// degrades to a no-op, so library code can instrument unconditionally and
// let binaries decide what to wire.
//
// # Trace propagation
//
// A trace is identified by a 64-bit trace ID; each hop within it is a span
// with its own 64-bit span ID and a parent span ID. The context travels
// between processes in the X-Cpnn-Trace header:
//
//	X-Cpnn-Trace: <16 hex trace id>-<16 hex span id>
//
// The server ingress parses (or mints) the context, the shard router forks
// one child span per member Bound/Gather/Apply hop and forwards the child's
// context on the outgoing wire request, and the replica follower records
// replay spans under follower-local traces. Completed spans land in a
// bounded in-memory Tracer served at GET /debug/traces.
//
// Recording is head-sampled: a request carrying X-Cpnn-Trace is always
// recorded end to end (the decision rides the SpanContext.Sampled bit), and
// ingresses additionally record a small fraction of headerless requests so
// the debug ring stays populated at negligible steady-state cost.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceHeader carries the span context between processes.
const TraceHeader = "X-Cpnn-Trace"

// SpanContext identifies one position in a distributed trace.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
	// Sampled is the head-based recording decision: spans are recorded (and
	// the context forwarded on the wire) only under a sampled parent. An
	// explicit X-Cpnn-Trace header always samples — the caller asked for the
	// trace — while ingresses sample a fraction of headerless requests so
	// /debug/traces stays populated without taxing every request.
	Sampled bool
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// Header renders the context in X-Cpnn-Trace wire form.
func (sc SpanContext) Header() string {
	return fmt.Sprintf("%016x-%016x", sc.TraceID, sc.SpanID)
}

// TraceHex is the trace ID as 16 lowercase hex digits — the form logs,
// slowlog entries and /debug/traces use.
func (sc SpanContext) TraceHex() string { return fmt.Sprintf("%016x", sc.TraceID) }

// ParseHeader decodes an X-Cpnn-Trace value. A malformed or absent value
// yields ok=false; callers then mint a fresh trace.
func ParseHeader(s string) (SpanContext, bool) {
	if len(s) != 33 || s[16] != '-' {
		return SpanContext{}, false
	}
	tid, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	sid, err := strconv.ParseUint(s[17:], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: tid, SpanID: sid, Sampled: true}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// NewUnsampledContext mints a valid span context with recording off: IDs
// for log/slowlog correlation, no span storage anywhere downstream.
func NewUnsampledContext() SpanContext {
	return SpanContext{TraceID: newID(), SpanID: newID()}
}

// newID returns a non-zero random 64-bit ID. IDs need no coordination —
// collisions merely merge two traces in the debug view.
func newID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span context for downstream hops to adopt as
// their parent.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the active span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Span is one completed hop record.
type Span struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	// Name is the operation ("GET /v1/cpnn", "member.bound", "wal.replay").
	Name string
	// Component is the subsystem that recorded the span ("server", "shard",
	// "replica").
	Component string
	Start     time.Time
	Duration  time.Duration
	// Attrs carries small key/value annotations (phase timings, cache
	// labels, fan-out, status).
	Attrs map[string]string
}

// ActiveSpan is an in-flight span; End records it into its Tracer.
type ActiveSpan struct {
	t  *Tracer
	sp Span
	mu sync.Mutex
}

// Context is the span's own context, for propagation to children and wire
// headers.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: a.sp.TraceID, SpanID: a.sp.SpanID, Sampled: true}
}

// SetAttr annotates the span. Safe on nil and after End (late attrs are
// simply dropped from the recorded copy).
func (a *ActiveSpan) SetAttr(key, value string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.sp.Attrs == nil {
		a.sp.Attrs = make(map[string]string, 4)
	}
	a.sp.Attrs[key] = value
	a.mu.Unlock()
}

// End stamps the duration and records the span. Safe on nil; a second End
// is ignored.
func (a *ActiveSpan) End() {
	if a == nil || a.t == nil {
		return
	}
	a.mu.Lock()
	t := a.t
	a.t = nil
	a.sp.Duration = time.Since(a.sp.Start)
	sp := a.sp
	if len(a.sp.Attrs) > 0 {
		sp.Attrs = make(map[string]string, len(a.sp.Attrs))
		for k, v := range a.sp.Attrs {
			sp.Attrs[k] = v
		}
	}
	a.mu.Unlock()
	t.Record(sp)
}

// maxSpansPerTrace bounds one trace's memory; a scatter-gather over a huge
// cluster truncates rather than grows without bound.
const maxSpansPerTrace = 128

// DefaultTraceCapacity is the trace-ring size binaries use unless told
// otherwise.
const DefaultTraceCapacity = 256

type traceRec struct {
	spans   []Span
	dropped int
}

// Tracer is a bounded in-memory store of completed spans, grouped by trace
// ID with FIFO eviction of whole traces. It doubles as the GET
// /debug/traces handler.
type Tracer struct {
	mu     sync.Mutex
	max    int
	order  []uint64 // trace IDs in arrival order
	traces map[uint64]*traceRec
}

// NewTracer returns a tracer retaining the last maxTraces traces
// (DefaultTraceCapacity when <= 0).
func NewTracer(maxTraces int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = DefaultTraceCapacity
	}
	return &Tracer{max: maxTraces, traces: make(map[uint64]*traceRec)}
}

// StartSpan opens a child span of the context's span (or a fresh trace when
// none is active) and returns a context carrying the child for further
// propagation. An unsampled parent short-circuits: the context passes
// through untouched and the returned span is nil (every method is nil-safe),
// so hop instrumentation costs nothing on unsampled requests. A parentless
// call starts a fresh, always-recorded trace — sampling headerless ingress
// traffic is the server's decision, not the tracer's. Works on a nil
// tracer: the span still propagates through the context and wire headers,
// it just records nowhere.
func (t *Tracer) StartSpan(ctx context.Context, component, name string) (context.Context, *ActiveSpan) {
	sp := Span{
		SpanID:    newID(),
		Name:      name,
		Component: component,
	}
	if parent, ok := SpanFromContext(ctx); ok {
		if !parent.Sampled {
			return ctx, nil
		}
		sp.TraceID, sp.ParentID = parent.TraceID, parent.SpanID
	} else {
		sp.TraceID = newID()
	}
	sp.Start = time.Now()
	a := &ActiveSpan{t: t, sp: sp}
	return ContextWithSpan(ctx, a.Context()), a
}

// Record stores one completed span. Safe on nil.
func (t *Tracer) Record(sp Span) {
	if t == nil || sp.TraceID == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.traces[sp.TraceID]
	if rec == nil {
		for len(t.order) >= t.max {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.traces, evict)
		}
		rec = &traceRec{}
		t.traces[sp.TraceID] = rec
		t.order = append(t.order, sp.TraceID)
	}
	if len(rec.spans) >= maxSpansPerTrace {
		rec.dropped++
		return
	}
	rec.spans = append(rec.spans, sp)
}

// SpanJSON is the /debug/traces span shape.
type SpanJSON struct {
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	Component  string            `json:"component"`
	Start      time.Time         `json:"start"`
	DurationMs float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceJSON is the /debug/traces trace shape.
type TraceJSON struct {
	TraceID    string     `json:"trace_id"`
	Start      time.Time  `json:"start"`
	DurationMs float64    `json:"duration_ms"`
	Dropped    int        `json:"dropped_spans,omitempty"`
	Spans      []SpanJSON `json:"spans"`
}

// Traces returns up to n traces, newest first, keeping only traces whose
// span envelope (first start to last end) lasted at least minDur. n <= 0
// means all retained traces.
func (t *Tracer) Traces(n int, minDur time.Duration) []TraceJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceJSON, 0, len(t.order))
	for i := len(t.order) - 1; i >= 0; i-- {
		id := t.order[i]
		rec := t.traces[id]
		if rec == nil || len(rec.spans) == 0 {
			continue
		}
		tj := TraceJSON{
			TraceID: fmt.Sprintf("%016x", id),
			Dropped: rec.dropped,
			Spans:   make([]SpanJSON, 0, len(rec.spans)),
		}
		start := rec.spans[0].Start
		var end time.Time
		for _, sp := range rec.spans {
			if sp.Start.Before(start) {
				start = sp.Start
			}
			if e := sp.Start.Add(sp.Duration); e.After(end) {
				end = e
			}
			sj := SpanJSON{
				SpanID:     fmt.Sprintf("%016x", sp.SpanID),
				Name:       sp.Name,
				Component:  sp.Component,
				Start:      sp.Start,
				DurationMs: float64(sp.Duration) / float64(time.Millisecond),
				Attrs:      sp.Attrs,
			}
			if sp.ParentID != 0 {
				sj.ParentID = fmt.Sprintf("%016x", sp.ParentID)
			}
			tj.Spans = append(tj.Spans, sj)
		}
		tj.Start = start
		tj.DurationMs = float64(end.Sub(start)) / float64(time.Millisecond)
		if end.Sub(start) < minDur {
			continue
		}
		sort.Slice(tj.Spans, func(a, b int) bool { return tj.Spans[a].Start.Before(tj.Spans[b].Start) })
		out = append(out, tj)
		if n > 0 && len(out) >= n {
			break
		}
	}
	t.mu.Unlock()
	return out
}

// ServeHTTP serves GET /debug/traces?n=&min_ms= as JSON, newest trace
// first.
func (t *Tracer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if p, err := strconv.Atoi(v); err == nil {
			n = p
		}
	}
	var minDur time.Duration
	if v := r.URL.Query().Get("min_ms"); v != "" {
		if p, err := strconv.ParseFloat(v, 64); err == nil && p > 0 {
			minDur = time.Duration(p * float64(time.Millisecond))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	traces := t.Traces(n, minDur)
	if traces == nil {
		traces = []TraceJSON{}
	}
	_ = enc.Encode(map[string]any{"traces": traces})
}
