package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: 0xdeadbeef01020304, SpanID: 0x0102030405060708}
	h := sc.Header()
	if len(h) != 33 || h[16] != '-' {
		t.Fatalf("header %q has the wrong shape", h)
	}
	want := sc
	want.Sampled = true // an explicit header is a request to record
	got, ok := ParseHeader(h)
	if !ok || got != want {
		t.Fatalf("ParseHeader(%q) = %+v, %v", h, got, ok)
	}
	for _, bad := range []string{
		"", "zz", strings.Repeat("0", 33), // no dash
		"000000000000000g-0000000000000001", // non-hex
		"0000000000000001-0000000000000001x",
	} {
		if _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) accepted", bad)
		}
	}
}

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.StartSpan(context.Background(), "server", "GET /v1/cpnn")
	_, child := tr.StartSpan(ctx, "shard", "member.bound")
	child.SetAttr("shard", "0")
	child.End()
	root.End()

	traces := tr.Traces(0, 0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	spans := traces[0].Spans
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Spans sort by start time: root first.
	if spans[0].Name != "GET /v1/cpnn" || spans[1].Name != "member.bound" {
		t.Fatalf("span order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].ParentID != spans[0].SpanID {
		t.Fatalf("child parent %s != root span %s", spans[1].ParentID, spans[0].SpanID)
	}
	if spans[1].Attrs["shard"] != "0" {
		t.Fatalf("child attrs = %v", spans[1].Attrs)
	}
}

func TestTracerEvictsWholeTracesFIFO(t *testing.T) {
	tr := NewTracer(2)
	var first string
	for i := 0; i < 3; i++ {
		ctx, sp := tr.StartSpan(context.Background(), "server", "req")
		if i == 0 {
			sc, _ := SpanFromContext(ctx)
			first = sc.TraceHex()
		}
		sp.End()
	}
	traces := tr.Traces(0, 0)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want capacity 2", len(traces))
	}
	for _, tj := range traces {
		if tj.TraceID == first {
			t.Fatal("oldest trace not evicted")
		}
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "server", "req")
	if _, ok := SpanFromContext(ctx); !ok {
		t.Fatal("nil tracer must still propagate a span context")
	}
	sp.SetAttr("k", "v")
	sp.End() // must not panic
	var nilSpan *ActiveSpan
	nilSpan.SetAttr("k", "v")
	nilSpan.End()
}

func TestTracerUnsampledParentRecordsNothing(t *testing.T) {
	tr := NewTracer(4)
	ctx := ContextWithSpan(context.Background(), NewUnsampledContext())
	child, sp := tr.StartSpan(ctx, "shard", "member.bound")
	if sp != nil {
		t.Fatal("unsampled parent must yield a nil span")
	}
	if child != ctx {
		t.Fatal("unsampled parent must pass the context through untouched")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if got := tr.Traces(0, 0); len(got) != 0 {
		t.Fatalf("unsampled request recorded %d traces", len(got))
	}
	if sc, ok := SpanFromContext(ctx); !ok || sc.Sampled {
		t.Fatalf("unsampled context: %+v, %v", sc, ok)
	}
}

func TestTracerMinDurationFilter(t *testing.T) {
	tr := NewTracer(8)
	_, fast := tr.StartSpan(context.Background(), "server", "fast")
	fast.End()
	if got := tr.Traces(0, time.Hour); len(got) != 0 {
		t.Fatalf("min-duration filter kept %d traces", len(got))
	}
	if got := tr.Traces(0, 0); len(got) != 1 {
		t.Fatalf("unfiltered got %d traces", len(got))
	}
}

func TestTracerServeHTTP(t *testing.T) {
	tr := NewTracer(8)
	_, sp := tr.StartSpan(context.Background(), "server", "req")
	sp.End()
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var out struct {
		Traces []TraceJSON `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if len(out.Traces) != 1 || len(out.Traces[0].Spans) != 1 {
		t.Fatalf("payload: %s", rec.Body.Bytes())
	}
}

func TestHistogramRendersMonotonicBuckets(t *testing.T) {
	h := NewHistogram("test_seconds", "help text", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.05} {
		h.Observe(v)
	}
	h.Observe(-1) // dropped
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var b strings.Builder
	h.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_seconds help text",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec("phase_seconds", "per-phase", []string{"phase", "endpoint"}, []float64{1})
	v.With("filter", "cpnn").Observe(0.5)
	v.With("verify", "cpnn").Observe(2)
	v.With("filter", "cpnn").Observe(0.25)

	var b strings.Builder
	v.WritePrometheus(&b)
	out := b.String()
	if strings.Count(out, "# TYPE phase_seconds histogram") != 1 {
		t.Fatalf("family header must appear exactly once:\n%s", out)
	}
	for _, want := range []string{
		`phase_seconds_bucket{phase="filter",endpoint="cpnn",le="1"} 2`,
		`phase_seconds_bucket{phase="verify",endpoint="cpnn",le="+Inf"} 1`,
		`phase_seconds_count{phase="filter",endpoint="cpnn"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	var empty strings.Builder
	NewHistogramVec("unused", "h", []string{"a"}, nil).WritePrometheus(&empty)
	if empty.Len() != 0 {
		t.Fatalf("empty vec rendered: %q", empty.String())
	}
	var nilVec *HistogramVec
	if nilVec.With("x") != nil {
		t.Fatal("nil vec must hand out nil children")
	}
}

func TestSlowLogRingAndThreshold(t *testing.T) {
	l := NewSlowLog(2, 10*time.Millisecond)
	if l.Observe(SlowEntry{Endpoint: "/fast", DurationMs: 5}) {
		t.Fatal("below-threshold entry admitted")
	}
	for i, ms := range []float64{12, 20, 30} {
		if !l.Observe(SlowEntry{Endpoint: "/slow", DurationMs: ms, Status: 200 + i}) {
			t.Fatalf("entry %d rejected", i)
		}
	}
	if l.Total() != 3 {
		t.Fatalf("total = %d", l.Total())
	}
	got := l.Entries(0)
	if len(got) != 2 || got[0].DurationMs != 30 || got[1].DurationMs != 20 {
		t.Fatalf("ring contents: %+v", got)
	}

	disabled := NewSlowLog(2, 0)
	if disabled.Observe(SlowEntry{DurationMs: 1e9}) {
		t.Fatal("disabled log admitted an entry")
	}

	rec := httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog?n=1", nil))
	var out struct {
		ThresholdMs float64     `json:"threshold_ms"`
		Total       uint64      `json:"total"`
		Entries     []SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.ThresholdMs != 10 || out.Total != 3 || len(out.Entries) != 1 {
		t.Fatalf("payload: %+v", out)
	}
}

func TestReqInfo(t *testing.T) {
	ctx, ri := WithReqInfo(context.Background())
	ReqInfoFrom(ctx).Set("cache", "hit")
	ri.Set("fanout", "3")
	attrs := ri.Attrs()
	if attrs["cache"] != "hit" || attrs["fanout"] != "3" {
		t.Fatalf("attrs = %v", attrs)
	}
	var nilRI *ReqInfo
	nilRI.Set("k", "v")
	if nilRI.Attrs() != nil {
		t.Fatal("nil ReqInfo must return nil attrs")
	}
	if ReqInfoFrom(context.Background()) != nil {
		t.Fatal("bare context must have no ReqInfo")
	}
}

func TestLoggerOptions(t *testing.T) {
	var b strings.Builder
	lg, err := (&LogOptions{Format: "json", Level: "debug"}).Logger(&b, "test")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", "v")
	var line map[string]any
	if err := json.Unmarshal([]byte(b.String()), &line); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, b.String())
	}
	if line["component"] != "test" || line["k"] != "v" {
		t.Fatalf("line = %v", line)
	}
	if _, err := (&LogOptions{Format: "yaml", Level: "info"}).Logger(&b, "x"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := (&LogOptions{Format: "text", Level: "loud"}).Logger(&b, "x"); err == nil {
		t.Fatal("bad level accepted")
	}
	Or(nil).Info("discarded") // must not panic
}

func TestBuildInfo(t *testing.T) {
	var b strings.Builder
	WriteBuildInfo(&b)
	out := b.String()
	if !strings.Contains(out, "cpnn_build_info{") || !strings.Contains(out, `version="`+Version+`"`) {
		t.Fatalf("build info: %q", out)
	}
}
