package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogOptions is the flag surface every binary shares.
type LogOptions struct {
	// Format is "text" or "json".
	Format string
	// Level is "debug", "info", "warn" or "error".
	Level string
}

// RegisterFlags wires -log-format and -log-level into a flag set with the
// conventional defaults.
func (o *LogOptions) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.Format, "log-format", "text", "log output format: text or json")
	fs.StringVar(&o.Level, "log-level", "info", "minimum log level: debug, info, warn, error")
}

// Logger builds the binary's root logger writing to w. Every line carries
// the component and the build version, satisfying the fleet-wide contract
// that a log line is attributable to a subsystem and a deploy.
func (o LogOptions) Logger(w io.Writer, component string) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(o.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug, info, warn, error)", o.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(o.Format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text, json)", o.Format)
	}
	return slog.New(h).With("component", component, "version", Version), nil
}

// Discard returns a logger that drops everything — the default when a
// component is constructed without one, so library code can log
// unconditionally.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

// Or returns l, or a discard logger when l is nil.
func Or(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l
}

// TraceID returns the active trace ID as hex for log correlation, or ""
// when the context carries no trace.
func TraceID(ctx context.Context) string {
	if sc, ok := SpanFromContext(ctx); ok {
		return sc.TraceHex()
	}
	return ""
}
