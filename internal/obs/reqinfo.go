package obs

import (
	"context"
	"sync"
)

// ReqInfo accumulates per-request annotations (phase timings, cache label,
// fan-out) from wherever in the evaluation stack they become known; the
// ingress middleware copies them onto the ingress span and the slow-query
// entry when the request completes. Safe on nil.
type ReqInfo struct {
	mu    sync.Mutex
	attrs map[string]string
}

type reqInfoKey struct{}

// WithReqInfo attaches a fresh carrier to the context.
func WithReqInfo(ctx context.Context) (context.Context, *ReqInfo) {
	ri := &ReqInfo{}
	return context.WithValue(ctx, reqInfoKey{}, ri), ri
}

// ReqInfoFrom returns the context's carrier, or nil.
func ReqInfoFrom(ctx context.Context) *ReqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*ReqInfo)
	return ri
}

// Set records one annotation. Safe on nil.
func (ri *ReqInfo) Set(key, value string) {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	if ri.attrs == nil {
		ri.attrs = make(map[string]string, 8)
	}
	ri.attrs[key] = value
	ri.mu.Unlock()
}

// Attrs returns a copy of the recorded annotations (nil when none).
func (ri *ReqInfo) Attrs() map[string]string {
	if ri == nil {
		return nil
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	if len(ri.attrs) == 0 {
		return nil
	}
	out := make(map[string]string, len(ri.attrs))
	for k, v := range ri.attrs {
		out[k] = v
	}
	return out
}
