package obs

import (
	"fmt"
	"io"
	"runtime"
)

// Version identifies the build. Release builds stamp it with
//
//	go build -ldflags "-X repro/internal/obs.Version=$(git describe --always)"
//
// so every log line, /healthz body and metrics scrape names the deploy.
var Version = "dev"

// WriteBuildInfo renders the cpnn_build_info identification gauge.
func WriteBuildInfo(w io.Writer) {
	fmt.Fprintf(w, "# HELP cpnn_build_info Build identification; the value is always 1.\n")
	fmt.Fprintf(w, "# TYPE cpnn_build_info gauge\n")
	fmt.Fprintf(w, "cpnn_build_info{version=%q,go_version=%q} 1\n", Version, runtime.Version())
}
