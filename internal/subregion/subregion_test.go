package subregion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/pdf"
)

// handTable builds the worked example used across the verifier tests:
//
//	X1: histogram edges {0,2,6}, masses {0.4, 0.6}   (n=0, f=6)
//	X2: uniform [1,5]                                 (n=1, f=5)
//	X3: uniform [3,8]                                 (n=3, f=8)
//
// f_min = 5, f_max = 8, end-points {0,1,2,3,5,8}, M = 5 subregions.
func handTable(t *testing.T) *Table {
	t.Helper()
	tb, err := Build([]Candidate{
		{ID: 10, Dist: pdf.MustHistogram([]float64{0, 2, 6}, []float64{0.4, 0.6})},
		{ID: 20, Dist: pdf.MustHistogram([]float64{1, 5}, []float64{1})},
		{ID: 30, Dist: pdf.MustHistogram([]float64{3, 8}, []float64{1})},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestBuildHandExampleStructure(t *testing.T) {
	tb := handTable(t)
	if tb.NumCandidates() != 3 {
		t.Fatalf("candidates = %d", tb.NumCandidates())
	}
	if tb.NumSubregions() != 5 {
		t.Fatalf("M = %d, want 5", tb.NumSubregions())
	}
	wantEnds := []float64{0, 1, 2, 3, 5, 8}
	ends := tb.Endpoints()
	if len(ends) != len(wantEnds) {
		t.Fatalf("ends = %v", ends)
	}
	for i := range ends {
		if math.Abs(ends[i]-wantEnds[i]) > 1e-12 {
			t.Fatalf("ends[%d] = %g, want %g", i, ends[i], wantEnds[i])
		}
	}
	if tb.FMin() != 5 || tb.FMax() != 8 {
		t.Errorf("fMin/fMax = %g/%g, want 5/8", tb.FMin(), tb.FMax())
	}
	// Candidates sorted by near point: IDs 10, 20, 30.
	ids := tb.IDs()
	if ids[0] != 10 || ids[1] != 20 || ids[2] != 30 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestBuildHandExampleMatrices(t *testing.T) {
	tb := handTable(t)
	wantD := [][]float64{
		{0, 0.2, 0.4, 0.55, 0.85, 1},
		{0, 0, 0.25, 0.5, 1, 1},
		{0, 0, 0, 0, 0.4, 1},
	}
	for i := range wantD {
		for j := range wantD[i] {
			if got := tb.D(i, j); math.Abs(got-wantD[i][j]) > 1e-12 {
				t.Errorf("D(%d,%d) = %g, want %g", i, j, got, wantD[i][j])
			}
		}
	}
	wantS := [][]float64{
		{0.2, 0.2, 0.15, 0.3, 0.15},
		{0, 0.25, 0.25, 0.5, 0},
		{0, 0, 0, 0.4, 0.6},
	}
	for i := range wantS {
		for j := range wantS[i] {
			if got := tb.S(i, j); math.Abs(got-wantS[i][j]) > 1e-12 {
				t.Errorf("S(%d,%d) = %g, want %g", i, j, got, wantS[i][j])
			}
		}
	}
	wantC := []int{1, 2, 2, 3, 2}
	for j, want := range wantC {
		if got := tb.Count(j); got != want {
			t.Errorf("Count(%d) = %d, want %d", j, got, want)
		}
	}
	wantY := []float64{1, 0.8, 0.45, 0.225, 0, 0}
	for j, want := range wantY {
		if got := tb.Y(j); math.Abs(got-want) > 1e-12 {
			t.Errorf("Y(%d) = %g, want %g", j, got, want)
		}
	}
	// Spot-check exclusive products.
	if got := tb.Excl(0, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Excl(0,3) = %g, want 0.5", got)
	}
	if got := tb.Excl(1, 4); math.Abs(got-0.15*0.6) > 1e-12 {
		t.Errorf("Excl(1,4) = %g, want 0.09", got)
	}
	if got := tb.Excl(2, 4); math.Abs(got-0) > 1e-12 {
		t.Errorf("Excl(2,4) = %g, want 0", got)
	}
	// Rightmost masses.
	wantRM := []float64{0.15, 0, 0.6}
	for i, want := range wantRM {
		if got := tb.RightmostMass(i); math.Abs(got-want) > 1e-12 {
			t.Errorf("RightmostMass(%d) = %g, want %g", i, got, want)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil); err != ErrNoCandidates {
		t.Errorf("empty build: %v", err)
	}
	if _, err := Build([]Candidate{{ID: 1, Dist: nil}}); err == nil {
		t.Error("nil distance pdf accepted")
	}
	// A candidate whose near point exceeds f_min must be rejected: the
	// filter should have pruned it.
	_, err := Build([]Candidate{
		{ID: 1, Dist: pdf.MustHistogram([]float64{0, 2}, []float64{1})},
		{ID: 2, Dist: pdf.MustHistogram([]float64{10, 12}, []float64{1})},
	})
	if err == nil {
		t.Error("unpruned candidate accepted")
	}
}

func TestBuildSingleCandidate(t *testing.T) {
	tb, err := Build([]Candidate{
		{ID: 5, Dist: pdf.MustHistogram([]float64{2, 4, 7}, []float64{1, 2})},
	})
	if err != nil {
		t.Fatal(err)
	}
	// f_min == f_max == 7: the rightmost subregion is the synthetic sliver.
	if tb.FMin() != 7 || tb.FMax() != 7 {
		t.Errorf("fMin/fMax = %g/%g", tb.FMin(), tb.FMax())
	}
	if got := tb.RightmostMass(0); got != 0 {
		t.Errorf("single candidate rightmost mass = %g, want 0", got)
	}
	// All mass is in the non-rightmost subregions.
	sum := 0.0
	for j := 0; j < tb.NumSubregions()-1; j++ {
		sum += tb.S(0, j)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("mass below f_min = %g, want 1", sum)
	}
}

func TestSubregionOf(t *testing.T) {
	tb := handTable(t)
	cases := []struct {
		r    float64
		want int
	}{
		{-1, 0}, {0, 0}, {0.5, 0}, {1, 1}, {1.5, 1}, {2.7, 2}, {3, 3}, {4.9, 3}, {5, 4}, {7, 4}, {8, 4}, {99, 4},
	}
	for _, tc := range cases {
		if got := tb.SubregionOf(tc.r); got != tc.want {
			t.Errorf("SubregionOf(%g) = %d, want %d", tc.r, got, tc.want)
		}
	}
}

func TestMarchCDFMatchesHistogramCDF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		edges := make([]float64, n+1)
		x := rng.Float64() * 5
		for i := range edges {
			edges[i] = x
			x += 0.05 + rng.Float64()*3
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64()
		}
		weights[0] += 0.1
		h, err := pdf.NewHistogram(edges, weights)
		if err != nil {
			return false
		}
		// Probe points: strictly ascending mixture of edges and interiors.
		var ends []float64
		p := edges[0] - 1
		for p < edges[n]+1 {
			ends = append(ends, p)
			p += 0.01 + rng.Float64()
		}
		out := make([]float64, len(ends))
		marchCDF(h, ends, out)
		for i, e := range ends {
			if math.Abs(out[i]-h.CDF(e)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTableInvariants checks the analytic invariants on randomized candidate
// sets generated through the real distance-pdf pipeline.
func TestTableInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nObj := 2 + rng.Intn(10)
		q := rng.Float64() * 100
		var cands []Candidate
		fMin := math.Inf(1)
		type span struct{ n, f float64 }
		var spans []span
		for i := 0; i < nObj; i++ {
			lo := q - 20 + rng.Float64()*40
			u := pdf.MustUniform(lo, lo+0.5+rng.Float64()*15)
			d, err := dist.FromPDF(u, q)
			if err != nil {
				return false
			}
			sup := d.Support()
			spans = append(spans, span{sup.Lo, sup.Hi})
			fMin = math.Min(fMin, sup.Hi)
			cands = append(cands, Candidate{ID: i, Dist: d})
		}
		// Emulate filtering: drop objects with near point beyond f_min.
		kept := cands[:0]
		for i, c := range cands {
			if spans[i].n <= fMin {
				kept = append(kept, c)
			}
		}
		tb, err := Build(kept)
		if err != nil {
			return false
		}
		m := tb.NumSubregions()
		for i := 0; i < tb.NumCandidates(); i++ {
			sum := 0.0
			prev := -1.0
			for j := 0; j <= m; j++ {
				dv := tb.D(i, j)
				if dv < prev-1e-12 || dv < -1e-12 || dv > 1+1e-12 {
					return false // cdf must be monotone within [0,1]
				}
				prev = dv
				// Excl * own factor == Y at every end-point.
				if math.Abs(tb.Excl(i, j)*(1-dv)-tb.Y(j)) > 1e-9 {
					return false
				}
			}
			for j := 0; j < m; j++ {
				sum += tb.S(i, j)
			}
			if math.Abs(sum-1) > 1e-9 {
				return false // subregion masses partition the distribution
			}
		}
		// End-points are strictly ascending and the last two bracket
		// [f_min, f_max].
		ends := tb.Endpoints()
		for j := 1; j < len(ends); j++ {
			if ends[j] <= ends[j-1] {
				return false
			}
		}
		// When f_min == f_max (single effective candidate) the rightmost
		// subregion is a synthetic sliver just above f_min.
		return ends[m-1] == tb.FMin() && ends[m] >= tb.FMax()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEndpointsIncludePDFBreaks(t *testing.T) {
	// A histogram object with a pdf change at 1.5 (below f_min) must
	// generate an end-point there (the paper's e4).
	tb, err := Build([]Candidate{
		{ID: 1, Dist: pdf.MustHistogram([]float64{0, 1.5, 4}, []float64{1, 5})},
		{ID: 2, Dist: pdf.MustHistogram([]float64{0.5, 3}, []float64{1})},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range tb.Endpoints() {
		if e == 1.5 {
			found = true
		}
	}
	if !found {
		t.Errorf("pdf breakpoint 1.5 missing from end-points %v", tb.Endpoints())
	}
	// Breakpoints at or above f_min (here 3) must NOT appear except f_min
	// and f_max themselves.
	for _, e := range tb.Endpoints() {
		if e > tb.FMin() && e < tb.FMax() {
			t.Errorf("end-point %g inside the rightmost subregion", e)
		}
	}
}

// TestRebuildReuseMatchesFresh: a table dirtied by a previous build and then
// Rebuilt over a new candidate set must be indistinguishable from a freshly
// built table — the batch path recycles tables through a pool and relies on
// this.
func TestRebuildReuseMatchesFresh(t *testing.T) {
	gen := func(seed int64, n int) []Candidate {
		rng := rand.New(rand.NewSource(seed))
		q := 50.0
		var cands []Candidate
		fMin := math.Inf(1)
		for i := 0; i < n; i++ {
			lo := q - 15 + rng.Float64()*30
			d, err := dist.FromPDF(pdf.MustUniform(lo, lo+1+rng.Float64()*10), q)
			if err != nil {
				t.Fatal(err)
			}
			fMin = math.Min(fMin, d.Support().Hi)
			cands = append(cands, Candidate{ID: i, Dist: d})
		}
		kept := cands[:0]
		for _, c := range cands {
			if c.Dist.Support().Lo <= fMin {
				kept = append(kept, c)
			}
		}
		return kept
	}

	// Dirty a reused table with a larger set, then Rebuild over each target
	// set and compare against a fresh Build, field by field.
	reused := new(Table)
	if err := reused.Rebuild(gen(99, 24)); err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 8; seed++ {
		cands := gen(seed, 3+int(seed)*2)
		fresh, err := Build(cands)
		if err != nil {
			t.Fatal(err)
		}
		if err := reused.Rebuild(cands); err != nil {
			t.Fatal(err)
		}
		if got, want := reused.NumCandidates(), fresh.NumCandidates(); got != want {
			t.Fatalf("seed %d: %d candidates, want %d", seed, got, want)
		}
		if got, want := reused.NumSubregions(), fresh.NumSubregions(); got != want {
			t.Fatalf("seed %d: %d subregions, want %d", seed, got, want)
		}
		if reused.FMin() != fresh.FMin() || reused.FMax() != fresh.FMax() {
			t.Fatalf("seed %d: fmin/fmax differ", seed)
		}
		for j, e := range fresh.Endpoints() {
			if reused.Endpoints()[j] != e {
				t.Fatalf("seed %d: endpoint %d differs", seed, j)
			}
		}
		nE := len(fresh.Endpoints())
		for i := 0; i < fresh.NumCandidates(); i++ {
			if reused.IDs()[i] != fresh.IDs()[i] {
				t.Fatalf("seed %d: candidate order differs at %d", seed, i)
			}
			for j := 0; j < nE; j++ {
				if reused.D(i, j) != fresh.D(i, j) || reused.Excl(i, j) != fresh.Excl(i, j) {
					t.Fatalf("seed %d: D/Excl(%d,%d) differ", seed, i, j)
				}
			}
			for j := 0; j < fresh.NumSubregions(); j++ {
				if reused.S(i, j) != fresh.S(i, j) {
					t.Fatalf("seed %d: S(%d,%d) differs", seed, i, j)
				}
			}
		}
		for j := 0; j < nE; j++ {
			if reused.Y(j) != fresh.Y(j) {
				t.Fatalf("seed %d: Y(%d) differs", seed, j)
			}
		}
		for j := 0; j < fresh.NumSubregions(); j++ {
			if reused.Count(j) != fresh.Count(j) {
				t.Fatalf("seed %d: Count(%d) differs", seed, j)
			}
		}
	}
}
