package subregion

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/pdf"
)

// candsFromFuzz turns raw fuzz floats into a filtered candidate set by
// treating consecutive pairs as uniform uncertainty regions around a query
// at 0 and deriving their exact distance pdfs — the same path a real query
// takes, so Build must accept the survivors of the near-point prune.
func candsFromFuzz(vals []float64) []Candidate {
	var cands []Candidate
	fMin := math.Inf(1)
	for i := 0; i+1 < len(vals); i += 2 {
		lo, ln := vals[i], vals[i+1]
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.Abs(lo) > 1e9 {
			return nil
		}
		if math.IsNaN(ln) || ln <= 1e-9 || ln > 1e9 {
			return nil
		}
		u, err := pdf.NewUniform(lo, lo+ln)
		if err != nil {
			return nil
		}
		d, err := dist.FromPDF(u, 0)
		if err != nil {
			return nil
		}
		fMin = math.Min(fMin, d.Support().Hi)
		cands = append(cands, Candidate{ID: len(cands), Dist: d})
	}
	kept := cands[:0]
	for _, c := range cands {
		if c.Dist.Support().Lo <= fMin {
			kept = append(kept, c)
		}
	}
	return kept
}

// tablesEqual reports whether two tables coincide bit for bit in shape,
// candidate order and every matrix entry.
func tablesEqual(a, b *Table) bool {
	if a.NumCandidates() != b.NumCandidates() || a.NumSubregions() != b.NumSubregions() {
		return false
	}
	m := a.NumSubregions()
	for i := 0; i < a.NumCandidates(); i++ {
		if a.IDs()[i] != b.IDs()[i] {
			return false
		}
		for j := 0; j <= m; j++ {
			if a.D(i, j) != b.D(i, j) || a.Excl(i, j) != b.Excl(i, j) {
				return false
			}
		}
		for j := 0; j < m; j++ {
			if a.S(i, j) != b.S(i, j) {
				return false
			}
		}
	}
	for j := 0; j <= m; j++ {
		if a.Endpoints()[j] != b.Endpoints()[j] || a.Y(j) != b.Y(j) {
			return false
		}
	}
	return true
}

// FuzzIncrementalPatch: patching a single candidate into (or out of) a live
// table must be exactly equivalent to rebuilding from the edited candidate
// set — the invariant the monitor's incremental re-verification path rests
// on. The last fuzz float repositions one candidate's region; we upsert its
// re-derived fold via Patch and compare against a from-scratch Build, then
// evict it and compare again.
func FuzzIncrementalPatch(f *testing.F) {
	f.Add(-1.0, 2.0, 0.5, 1.0, -3.0, 4.0, 1.5)
	f.Add(0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.25)
	f.Add(-0.5, 1e-6, 0.5, 2.0, 1.0, 0.25, -2.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, move float64) {
		cands := candsFromFuzz([]float64{a, b, c, d, e, g})
		if len(cands) < 2 {
			return
		}
		if math.IsNaN(move) || math.IsInf(move, 0) || math.Abs(move) > 1e9 {
			return
		}
		tb, err := Build(cands)
		if err != nil {
			return
		}

		// Re-derive candidate 0's fold as if its object moved by `move`,
		// keeping the near-point prune satisfied (skip otherwise — the real
		// pipeline re-filters before patching).
		moved := cands[0].Dist.Support()
		u, err := pdf.NewUniform(moved.Lo+move, moved.Hi+move)
		if err != nil {
			return
		}
		nd, err := dist.FromPDF(u, 0)
		if err != nil {
			return
		}
		edited := append([]Candidate(nil), cands...)
		edited[0] = Candidate{ID: cands[0].ID, Dist: nd}
		fMin := math.Inf(1)
		for _, cd := range edited {
			fMin = math.Min(fMin, cd.Dist.Support().Hi)
		}
		for _, cd := range edited {
			if cd.Dist.Support().Lo > fMin {
				return // edit would violate the filter invariant; not a patchable state
			}
		}

		if err := tb.Patch(&edited[0], -1); err != nil {
			t.Fatalf("Patch upsert failed: %v", err)
		}
		fresh, err := Build(edited)
		if err != nil {
			t.Fatalf("Build on edited set failed where Patch succeeded: %v", err)
		}
		if !tablesEqual(tb, fresh) {
			t.Fatal("patched table differs from rebuilt table after upsert")
		}

		// Evict the same candidate; the survivors were already mutually
		// filter-consistent (removing a candidate can only raise f_min, and
		// every survivor's near point was <= the old f_min... not necessarily
		// <= the new one, so skip sets Rebuild rejects).
		rest := edited[1:]
		if err := tb.Patch(nil, edited[0].ID); err != nil {
			if _, berr := Build(rest); berr == nil {
				t.Fatalf("Patch evict failed where Build succeeded: %v", err)
			}
			return
		}
		fresh, err = Build(rest)
		if err != nil {
			t.Fatalf("Build on evicted set failed where Patch succeeded: %v", err)
		}
		if !tablesEqual(tb, fresh) {
			t.Fatal("patched table differs from rebuilt table after evict")
		}
	})
}

// FuzzBuild: the subregion decomposition must never panic on any filtered
// candidate set, every table it builds must satisfy the paper's structural
// invariants, and a Rebuild into a dirty table must reproduce a fresh Build
// exactly.
func FuzzBuild(f *testing.F) {
	f.Add(-1.0, 2.0, 0.5, 1.0, -3.0, 4.0)
	f.Add(0.0, 1.0, 0.0, 1.0, 0.0, 1.0)
	f.Add(-0.5, 1e-6, 0.5, 2.0, 1.0, 0.25)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g float64) {
		cands := candsFromFuzz([]float64{a, b, c, d, e, g})
		if len(cands) == 0 {
			return
		}
		tb, err := Build(cands)
		if err != nil {
			return // rejecting a degenerate set is fine; panicking is not
		}

		m := tb.NumSubregions()
		ends := tb.Endpoints()
		if m < 1 || len(ends) != m+1 {
			t.Fatalf("table has %d subregions but %d end-points", m, len(ends))
		}
		for j := 1; j < len(ends); j++ {
			if !(ends[j] > ends[j-1]) {
				t.Fatalf("end-points not strictly ascending at %d: %v", j, ends)
			}
		}
		for i := 0; i < tb.NumCandidates(); i++ {
			sum, prev := 0.0, -1.0
			for j := 0; j <= m; j++ {
				dv := tb.D(i, j)
				if dv < prev-1e-12 || dv < -1e-12 || dv > 1+1e-12 {
					t.Fatalf("candidate %d: cdf not monotone in [0,1] at end-point %d", i, j)
				}
				prev = dv
				ev := tb.Excl(i, j)
				if ev < -1e-12 || ev > 1+1e-12 {
					t.Fatalf("candidate %d: exclusive product %g outside [0,1]", i, ev)
				}
				if math.Abs(ev*(1-dv)-tb.Y(j)) > 1e-9 {
					t.Fatalf("candidate %d end-point %d: Excl*(1-D) != Y", i, j)
				}
			}
			for j := 0; j < m; j++ {
				s := tb.S(i, j)
				if s < 0 {
					t.Fatalf("candidate %d: negative subregion probability", i)
				}
				sum += s
			}
			if sum > 1+1e-9 {
				t.Fatalf("candidate %d: subregion masses sum to %g > 1", i, sum)
			}
		}
		for j := 0; j < m; j++ {
			n := 0
			for i := 0; i < tb.NumCandidates(); i++ {
				if tb.S(i, j) > 0 {
					n++
				}
			}
			if n != tb.Count(j) {
				t.Fatalf("subregion %d: Count=%d but %d candidates have mass", j, tb.Count(j), n)
			}
		}

		// Rebuild into a dirty table must match the fresh build bit for bit.
		dirty := new(Table)
		if err := dirty.Rebuild(cands[:1]); err != nil {
			t.Fatal(err)
		}
		if err := dirty.Rebuild(cands); err != nil {
			t.Fatalf("Rebuild failed where Build succeeded: %v", err)
		}
		if dirty.NumSubregions() != m || dirty.NumCandidates() != tb.NumCandidates() {
			t.Fatal("Rebuild shape differs from fresh Build")
		}
		for i := 0; i < tb.NumCandidates(); i++ {
			for j := 0; j <= m; j++ {
				if dirty.D(i, j) != tb.D(i, j) || dirty.Excl(i, j) != tb.Excl(i, j) {
					t.Fatalf("Rebuild D/Excl(%d,%d) differs from fresh Build", i, j)
				}
			}
		}
	})
}
