// Package subregion builds the subregion decomposition at the core of the
// paper's verifiers (§IV-A, Fig. 7).
//
// Given the candidate set of a query — each candidate represented by its
// distance pdf — the space of distances is partitioned at "end-points": every
// candidate's near point, every point where a distance pdf changes value
// (histogram bin edges) below f_min, plus f_min and f_max. Adjacent
// end-points delimit subregions S_1..S_M; the rightmost subregion
// S_M = [f_min, f_max] is never subdivided because no object located beyond
// f_min can be the nearest neighbor.
//
// For every candidate X_i and subregion S_j the table records the subregion
// probability s_ij = Pr(R_i ∈ S_j) and the distance cdf D_i(e_j) at the
// subregion's lower end-point — exactly the number pairs of Fig. 7(b) — plus
// the exclusive products Π_{k≠i}(1 − D_k(e_j)) that Lemma 2 and Eq. 11
// consume.
package subregion

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/pdf"
)

// Candidate pairs a dataset object ID with its distance pdf for the current
// query point.
type Candidate struct {
	// ID is the object's dataset ID.
	ID int
	// Dist is the pdf of the object's distance from the query point.
	Dist *pdf.Histogram
}

// Table is the subregion decomposition of one query's candidate set.
//
// Candidates are sorted by ascending near point and addressed by a local
// index 0..NumCandidates()-1 (the paper's X_1..X_|C| renaming); IDs maps back
// to dataset IDs. End-points are Ends[0..M]; subregion j (0-based) spans
// [Ends[j], Ends[j+1]] and the rightmost subregion has index M-1.
type Table struct {
	ids   []int
	dists []*pdf.Histogram
	ends  []float64
	m     int // number of subregions

	fMin, fMax float64

	s    []float64 // |C| × M subregion probabilities, row-major
	d    []float64 // |C| × (M+1) distance cdf at each end-point, row-major
	excl []float64 // |C| × (M+1) Π_{k≠i}(1−D_k(e_j)), row-major
	y    []float64 // M+1 full products Π_k (1−D_k(e_j))
	c    []int     // M per-subregion counts of candidates with s_ij > 0

	// Scratch reused across Rebuild/Patch calls; never escapes the table.
	order    []int
	pts      []float64
	pre, suf []float64
	patchBuf []Candidate
}

// MemBytes returns the approximate heap footprint of the table's matrices
// and scratch. Long-lived caches that retain tables across evaluations (the
// monitor's per-query state) use it for accounting against their memory cap.
func (t *Table) MemBytes() int {
	words := cap(t.ends) + cap(t.s) + cap(t.d) + cap(t.excl) + cap(t.y) +
		cap(t.pts) + cap(t.pre) + cap(t.suf) +
		cap(t.ids) + cap(t.dists) + cap(t.order) + cap(t.c)
	return 8*words + 24*cap(t.patchBuf)
}

// ErrNoCandidates is returned when a table is built from an empty candidate
// set.
var ErrNoCandidates = errors.New("subregion: empty candidate set")

// Build constructs the subregion table for a candidate set. Candidates whose
// near point lies beyond f_min contribute nothing (their qualification
// probability is zero); Build returns an error for them so that callers
// notice broken filtering instead of silently mis-ranking.
func Build(cands []Candidate) (*Table, error) {
	t := new(Table)
	if err := t.Rebuild(cands); err != nil {
		return nil, err
	}
	return t, nil
}

// Rebuild constructs the table in place for a new candidate set, reusing the
// table's backing arrays — the batch query path recycles tables through a
// sync.Pool so per-query matrix allocation (the dominant allocation of a
// C-PNN evaluation) is paid once per worker, not once per query. Any data
// previously read from the table is invalidated. The zero Table is ready for
// Rebuild; the semantics are exactly Build's.
func (t *Table) Rebuild(cands []Candidate) error {
	if len(cands) == 0 {
		return ErrNoCandidates
	}
	t.ids = grow(t.ids, len(cands))
	t.dists = grow(t.dists, len(cands))
	t.order = grow(t.order, len(cands))
	for i := range t.order {
		t.order[i] = i
	}
	// Near-point ties break by candidate ID so the table — and every
	// float product computed over it, bit for bit — is a pure function of
	// the candidate *set*, independent of input order. The incremental
	// re-verification path (core.CPNNIncremental, Table.Patch) relies on
	// this: patched and rebuilt-from-scratch tables must coincide exactly.
	sort.Slice(t.order, func(a, b int) bool {
		la := cands[t.order[a]].Dist.Support().Lo
		lb := cands[t.order[b]].Dist.Support().Lo
		if la != lb {
			return la < lb
		}
		return cands[t.order[a]].ID < cands[t.order[b]].ID
	})
	t.fMin = math.Inf(1)
	t.fMax = math.Inf(-1)
	for rank, idx := range t.order {
		c := cands[idx]
		if c.Dist == nil {
			return fmt.Errorf("subregion: candidate %d has nil distance pdf", c.ID)
		}
		t.ids[rank] = c.ID
		t.dists[rank] = c.Dist
		sup := c.Dist.Support()
		t.fMin = math.Min(t.fMin, sup.Hi)
		t.fMax = math.Max(t.fMax, sup.Hi)
	}
	for i, dh := range t.dists {
		if dh.Support().Lo > t.fMin {
			return fmt.Errorf(
				"subregion: candidate %d has near point %g beyond f_min %g; filtering should have pruned it",
				t.ids[i], dh.Support().Lo, t.fMin)
		}
	}

	t.buildEndpoints()
	t.m = len(t.ends) - 1
	t.fillMatrices()
	return nil
}

// buildEndpoints assembles the sorted, deduplicated end-point list: near
// points, distance-pdf breakpoints strictly below f_min, then f_min and
// f_max (paper: "no end points are defined between (e5, e6)").
func (t *Table) buildEndpoints() {
	pts := t.pts[:0]
	for _, dh := range t.dists {
		pts = append(pts, dh.Support().Lo)
		for _, e := range dh.Edges() {
			if e < t.fMin {
				pts = append(pts, e)
			}
		}
	}
	pts = append(pts, t.fMin)
	if t.fMax > t.fMin {
		pts = append(pts, t.fMax)
	} else {
		// All far points coincide: the rightmost subregion degenerates, but
		// the partition still needs at least one subregion; extend by an
		// empty-width guard only when every candidate shares near == far,
		// which cannot happen for valid pdfs, so fMax == fMin simply means
		// a zero-width rightmost region that we merge away by adding a
		// sentinel just above it.
		pts = append(pts, math.Nextafter(t.fMin, math.Inf(1)))
	}
	sort.Float64s(pts)
	t.pts = pts // keep the grown capacity for the next Rebuild
	t.ends = dedupe(pts)
}

// fillMatrices computes, per candidate, the cdf at each end-point by a
// single linear march over the distance histogram, then derives subregion
// probabilities, per-subregion counts and exclusive cdf products.
func (t *Table) fillMatrices() {
	nC := len(t.dists)
	nE := len(t.ends)
	t.d = grow(t.d, nC*nE)
	t.s = grow(t.s, nC*t.m)
	t.excl = grow(t.excl, nC*nE)
	t.y = grow(t.y, nE)
	t.c = grow(t.c, t.m)
	clear(t.c) // c accumulates via ++; every other matrix is fully overwritten

	for i, dh := range t.dists {
		row := t.d[i*nE : (i+1)*nE]
		marchCDF(dh, t.ends, row)
		srow := t.s[i*t.m : (i+1)*t.m]
		for j := 0; j < t.m; j++ {
			v := row[j+1] - row[j]
			if v < 0 {
				v = 0 // rounding guard; cdf is monotone analytically
			}
			srow[j] = v
			if v > 0 {
				t.c[j]++
			}
		}
	}

	// Exclusive products per end-point via prefix/suffix scans, which avoids
	// dividing by potentially zero (1 − D_k) factors. The scans run candidate-
	// major so every access walks the row-major matrices with stride one: the
	// forward pass leaves Π_{k<i}(1−D_k(e_j)) in excl, the backward pass folds
	// in the suffix. The arithmetic (and so the result, bit for bit) is the
	// same as scanning per end-point; only the traversal order differs.
	t.pre = grow(t.pre, nE)
	t.suf = grow(t.suf, nE)
	pre, suf := t.pre, t.suf
	for j := range pre {
		pre[j] = 1
		suf[j] = 1
	}
	for i := 0; i < nC; i++ {
		drow := t.d[i*nE : (i+1)*nE]
		erow := t.excl[i*nE : (i+1)*nE]
		for j, dv := range drow {
			erow[j] = pre[j]
			pre[j] *= 1 - dv
		}
	}
	copy(t.y, pre)
	for i := nC - 1; i >= 0; i-- {
		drow := t.d[i*nE : (i+1)*nE]
		erow := t.excl[i*nE : (i+1)*nE]
		for j, dv := range drow {
			erow[j] *= suf[j]
			suf[j] *= 1 - dv
		}
	}
}

// marchCDF writes cdf values of dh at every point of the ascending slice
// ends into out, in O(len(ends) + bins) time.
func marchCDF(dh *pdf.Histogram, ends []float64, out []float64) {
	edges := dh.Edges()
	nBins := dh.NumBins()
	bin := 0
	cum := 0.0
	for j, e := range ends {
		for bin < nBins && edges[bin+1] <= e {
			cum += dh.BinMass(bin)
			bin++
		}
		switch {
		case e <= edges[0]:
			out[j] = 0
		case bin >= nBins:
			out[j] = 1
		default:
			out[j] = cum + dh.BinDensity(bin)*(e-edges[bin])
		}
	}
}

// Patch applies a single-candidate edit to the table's candidate set and
// rebuilds it in place, reusing all matrix storage: a non-nil upsert replaces
// the candidate with the same ID (or inserts it), and evict removes the
// candidate with that ID (pass a negative evict for none). It is the
// incremental re-verification path's table maintenance primitive — a commit
// that re-derived k folds patches them in one at a time instead of
// reassembling the candidate slice — and is exactly equivalent to Rebuild on
// the edited candidate set (FuzzIncrementalPatch pins this). Evicting the
// last candidate returns ErrNoCandidates and leaves the table unchanged.
func (t *Table) Patch(upsert *Candidate, evict int) error {
	cands := t.patchBuf[:0]
	replaced := false
	for i, id := range t.ids {
		if evict >= 0 && id == evict {
			continue
		}
		if upsert != nil && id == upsert.ID {
			cands = append(cands, *upsert)
			replaced = true
			continue
		}
		cands = append(cands, Candidate{ID: id, Dist: t.dists[i]})
	}
	if upsert != nil && !replaced {
		cands = append(cands, *upsert)
	}
	t.patchBuf = cands[:0] // keep the grown capacity across patches
	if len(cands) == 0 {
		return ErrNoCandidates
	}
	return t.Rebuild(cands)
}

// NumCandidates returns |C|, the candidate-set size.
func (t *Table) NumCandidates() int { return len(t.ids) }

// NumSubregions returns M, the subregion count (including the rightmost).
func (t *Table) NumSubregions() int { return t.m }

// IDs returns the dataset IDs in near-point order; callers must not mutate.
func (t *Table) IDs() []int { return t.ids }

// Dist returns candidate i's distance pdf.
func (t *Table) Dist(i int) *pdf.Histogram { return t.dists[i] }

// Endpoints returns the end-point slice e_1..e_{M+1} (len M+1); callers must
// not mutate it.
func (t *Table) Endpoints() []float64 { return t.ends }

// FMin returns the minimum far point of the candidate set.
func (t *Table) FMin() float64 { return t.fMin }

// FMax returns the maximum far point of the candidate set.
func (t *Table) FMax() float64 { return t.fMax }

// S returns the subregion probability s_ij for candidate i in subregion j.
func (t *Table) S(i, j int) float64 { return t.s[i*t.m+j] }

// D returns the distance cdf D_i evaluated at end-point j (0 <= j <= M).
func (t *Table) D(i, j int) float64 { return t.d[i*len(t.ends)+j] }

// Excl returns Π_{k≠i} (1 − D_k(e_j)), the probability that every other
// candidate's distance is at least e_j.
func (t *Table) Excl(i, j int) float64 { return t.excl[i*len(t.ends)+j] }

// Y returns the full product Π_k (1 − D_k(e_j)) of Eq. 2.
func (t *Table) Y(j int) float64 { return t.y[j] }

// Count returns c_j, the number of candidates with non-zero subregion
// probability in subregion j.
func (t *Table) Count(j int) int { return t.c[j] }

// RightmostMass returns s_iM, candidate i's probability of falling in the
// rightmost subregion — the quantity the RS verifier subtracts from one.
func (t *Table) RightmostMass(i int) float64 { return t.S(i, t.m-1) }

// SubregionOf returns the index of the subregion containing r, clamping to
// the partition's ends.
func (t *Table) SubregionOf(r float64) int {
	if r <= t.ends[0] {
		return 0
	}
	if r >= t.ends[len(t.ends)-1] {
		return t.m - 1
	}
	j := sort.SearchFloat64s(t.ends, r)
	// ends[j-1] < r <= ends[j] (SearchFloat64s finds first >= r); subregion
	// index is j-1 except when r equals an end-point exactly.
	if t.ends[j] == r && j < t.m {
		return j
	}
	return j - 1
}

func dedupe(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// grow returns a slice of length n, reusing s's backing array when its
// capacity suffices. Contents are unspecified; callers overwrite every
// element (or clear explicitly).
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
