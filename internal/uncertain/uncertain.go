// Package uncertain defines the uncertain-object data model of the C-PNN
// engine and the synthetic dataset generators used by the experiments.
//
// An uncertain object follows the attribute-uncertainty model of the paper:
// its value is unknown but lies in a closed one-dimensional uncertainty
// region, distributed according to a pdf whose mass inside the region is one.
// Datasets are flat collections of such objects; the experiment workloads
// (§V-A) are generated here, including the Long-Beach-like interval set.
package uncertain

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/pdf"
)

// Object is an uncertain one-dimensional value: an uncertainty region with a
// pdf over it. The region is the pdf's support.
type Object struct {
	// ID identifies the object within its dataset.
	ID int
	// PDF is the uncertainty distribution; its support is the uncertainty
	// region of the object.
	PDF pdf.PDF
}

// Region returns the object's uncertainty region.
func (o Object) Region() geom.Interval { return o.PDF.Support() }

// Source supplies objects by dense ID without requiring them to be resident:
// Region must be cheap metadata (the store keeps support intervals in
// memory), while PDF may fault the payload in from disk. A Dataset backed by
// a Source is how the engine serves datasets larger than the page-cache
// budget.
type Source interface {
	Len() int
	Region(i int) geom.Interval
	PDF(i int) pdf.PDF
}

// Dataset is an immutable collection of uncertain objects with dense IDs
// 0..Len()-1, either fully materialized or backed by a Source.
type Dataset struct {
	objects []Object
	src     Source // nil when materialized
}

// NewDataset builds a dataset from pdfs, assigning sequential IDs.
func NewDataset(pdfs []pdf.PDF) *Dataset {
	objs := make([]Object, len(pdfs))
	for i, p := range pdfs {
		objs[i] = Object{ID: i, PDF: p}
	}
	return &Dataset{objects: objs}
}

// NewBackedDataset wraps a Source as a dataset. Objects are assembled on
// demand; Region never touches payloads.
func NewBackedDataset(src Source) *Dataset { return &Dataset{src: src} }

// Len returns the number of objects.
func (d *Dataset) Len() int {
	if d.src != nil {
		return d.src.Len()
	}
	return len(d.objects)
}

// Object returns the object with the given ID. On a Source-backed dataset
// this may fault the pdf payload in from disk; callers that only need the
// uncertainty region should use Region instead.
func (d *Dataset) Object(id int) Object {
	if d.src != nil {
		return Object{ID: id, PDF: d.src.PDF(id)}
	}
	return d.objects[id]
}

// Region returns the uncertainty region of the object with the given ID
// without touching its pdf payload — the accessor for filtering-phase scans.
func (d *Dataset) Region(id int) geom.Interval {
	if d.src != nil {
		return d.src.Region(id)
	}
	return d.objects[id].Region()
}

// Objects returns all objects as a slice; callers must not mutate it. On a
// Source-backed dataset this materializes every object (faulting all
// payloads) — iterate with Len/Region/Object when payloads aren't needed.
func (d *Dataset) Objects() []Object {
	if d.src != nil {
		objs := make([]Object, d.src.Len())
		for i := range objs {
			objs[i] = Object{ID: i, PDF: d.src.PDF(i)}
		}
		return objs
	}
	return d.objects
}

// Domain returns the interval spanned by all uncertainty regions.
func (d *Dataset) Domain() geom.Interval {
	n := d.Len()
	if n == 0 {
		return geom.Interval{}
	}
	dom := d.Region(0)
	for i := 1; i < n; i++ {
		dom = dom.Union(d.Region(i))
	}
	return dom
}

// Validate checks every object's pdf invariants. It is O(n · pdf checks) and
// intended for ingestion paths and tests.
func (d *Dataset) Validate() error {
	for i, n := 0, d.Len(); i < n; i++ {
		if err := pdf.Validate(d.Object(i).PDF); err != nil {
			return fmt.Errorf("uncertain: object %d: %w", i, err)
		}
	}
	return nil
}

// GenOptions configures the synthetic generators.
type GenOptions struct {
	// N is the number of objects.
	N int
	// Domain is the extent of the 1-D space; region left endpoints are
	// uniform over it (or clustered, see Clusters).
	Domain float64
	// Clusters, when positive, concentrates ClusterFrac of the objects in
	// Gaussian blobs around that many uniformly-placed centers — the
	// spatial skew of real road data such as the paper's Long Beach set.
	Clusters int
	// ClusterFrac is the fraction of objects placed in clusters (the rest
	// are uniform background); only used when Clusters > 0.
	ClusterFrac float64
	// ClusterSigma is the blob standard deviation; only used when
	// Clusters > 0.
	ClusterSigma float64
	// MeanLen is the mean uncertainty-region length.
	MeanLen float64
	// MinLen floors region lengths so no region is degenerate.
	MinLen float64
	// MaxLen caps region lengths.
	MaxLen float64
	// Seed makes generation deterministic.
	Seed int64
}

// LongBeachOptions mirrors the paper's Long Beach workload (§V-A): 53,144
// intervals distributed over a 10K-unit dimension with uniform pdfs. The
// length mix is right-skewed (exponential), calibrated so that the average
// candidate set of a random C-PNN holds roughly 96 objects, the figure the
// paper reports for its filtered candidate sets.
func LongBeachOptions(seed int64) GenOptions {
	return GenOptions{
		N:            53144,
		Domain:       10000,
		MeanLen:      13,
		MinLen:       0.5,
		MaxLen:       120,
		Clusters:     150,
		ClusterFrac:  0.97,
		ClusterSigma: 10,
		Seed:         seed,
	}
}

func (g GenOptions) validate() error {
	if g.N < 0 {
		return fmt.Errorf("uncertain: negative object count %d", g.N)
	}
	if !(g.Domain > 0) {
		return fmt.Errorf("uncertain: non-positive domain %g", g.Domain)
	}
	if !(g.MinLen > 0) || g.MaxLen < g.MinLen || g.MeanLen < g.MinLen || g.MeanLen > g.MaxLen {
		return fmt.Errorf("uncertain: inconsistent lengths min=%g mean=%g max=%g",
			g.MinLen, g.MeanLen, g.MaxLen)
	}
	if g.Clusters > 0 {
		if g.ClusterFrac < 0 || g.ClusterFrac > 1 {
			return fmt.Errorf("uncertain: cluster fraction %g outside [0, 1]", g.ClusterFrac)
		}
		if !(g.ClusterSigma > 0) {
			return fmt.Errorf("uncertain: non-positive cluster sigma %g", g.ClusterSigma)
		}
	}
	return nil
}

// regionStart draws a region left endpoint, honoring clustering. centers is
// nil for purely uniform placement.
func (g GenOptions) regionStart(rng *rand.Rand, centers []float64) float64 {
	if len(centers) == 0 || rng.Float64() >= g.ClusterFrac {
		return rng.Float64() * g.Domain
	}
	c := centers[rng.Intn(len(centers))]
	for {
		x := c + rng.NormFloat64()*g.ClusterSigma
		if x >= 0 && x <= g.Domain {
			return x
		}
	}
}

// clusterCenters places the generator's cluster centers, or returns nil when
// clustering is disabled.
func (g GenOptions) clusterCenters(rng *rand.Rand) []float64 {
	if g.Clusters <= 0 {
		return nil
	}
	centers := make([]float64, g.Clusters)
	for i := range centers {
		centers[i] = rng.Float64() * g.Domain
	}
	return centers
}

// GenerateUniform generates a dataset of uniform-pdf objects whose region
// lengths follow a truncated exponential distribution with the configured
// mean — the skew typical of TIGER line-segment data.
func GenerateUniform(opt GenOptions) (*Dataset, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	centers := opt.clusterCenters(rng)
	pdfs := make([]pdf.PDF, opt.N)
	for i := range pdfs {
		lo := opt.regionStart(rng, centers)
		u, err := pdf.NewUniform(lo, lo+opt.regionLen(rng))
		if err != nil {
			return nil, err
		}
		pdfs[i] = u
	}
	return NewDataset(pdfs), nil
}

// GenerateGaussian generates a dataset with the same region geometry as
// GenerateUniform but truncated-Gaussian pdfs in the paper's §V.5
// parameterization (mean at the region center, sigma = width/6), discretized
// to the given number of histogram bars (the paper uses 300).
func GenerateGaussian(opt GenOptions, bars int) (*Dataset, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if bars < 1 {
		return nil, fmt.Errorf("uncertain: need at least one histogram bar, got %d", bars)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	centers := opt.clusterCenters(rng)
	pdfs := make([]pdf.PDF, opt.N)
	for i := range pdfs {
		lo := opt.regionStart(rng, centers)
		hi := lo + opt.regionLen(rng)
		g, err := pdf.PaperGaussian(lo, hi)
		if err != nil {
			return nil, err
		}
		h, err := pdf.Discretize(g, bars)
		if err != nil {
			return nil, err
		}
		pdfs[i] = h
	}
	return NewDataset(pdfs), nil
}

// GenerateGaussianAnalytic is GenerateGaussian without pre-discretization:
// objects carry analytic truncated-Gaussian pdfs and the query engine
// discretizes only the per-query candidates. This keeps paper-scale Gaussian
// datasets (53k objects) small in memory while preserving the §V.5 workload.
func GenerateGaussianAnalytic(opt GenOptions) (*Dataset, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	centers := opt.clusterCenters(rng)
	pdfs := make([]pdf.PDF, opt.N)
	for i := range pdfs {
		lo := opt.regionStart(rng, centers)
		hi := lo + opt.regionLen(rng)
		g, err := pdf.PaperGaussian(lo, hi)
		if err != nil {
			return nil, err
		}
		pdfs[i] = g
	}
	return NewDataset(pdfs), nil
}

// GenerateHistogram generates objects with arbitrary (random) histogram pdfs
// over their regions — the "histogram between 10°C and 20°C" shape of the
// paper's Fig. 1(b). Each object gets a random number of bars in [2, maxBars]
// with random positive weights.
func GenerateHistogram(opt GenOptions, maxBars int) (*Dataset, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if maxBars < 2 {
		return nil, fmt.Errorf("uncertain: maxBars %d < 2", maxBars)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	pdfs := make([]pdf.PDF, opt.N)
	for i := range pdfs {
		lo := rng.Float64() * opt.Domain
		hi := lo + opt.regionLen(rng)
		bars := 2 + rng.Intn(maxBars-1)
		edges := make([]float64, bars+1)
		weights := make([]float64, bars)
		for b := 0; b <= bars; b++ {
			edges[b] = lo + (hi-lo)*float64(b)/float64(bars)
		}
		for b := range weights {
			// Strictly positive weights keep densities non-zero throughout
			// the region, matching the paper's standing assumption.
			weights[b] = 0.1 + rng.Float64()
		}
		h, err := pdf.NewHistogram(edges, weights)
		if err != nil {
			return nil, err
		}
		pdfs[i] = h
	}
	return NewDataset(pdfs), nil
}

// regionLen draws a truncated-exponential region length.
func (g GenOptions) regionLen(rng *rand.Rand) float64 {
	for {
		l := g.MinLen + rng.ExpFloat64()*(g.MeanLen-g.MinLen)
		if l <= g.MaxLen {
			return l
		}
	}
}

// QueryWorkload returns n deterministic query points uniform over the
// dataset generation domain, avoiding the extreme 5% margins so queries are
// surrounded by data on both sides, as in the paper's random-query setup.
func QueryWorkload(n int, domain float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]float64, n)
	margin := domain * 0.05
	for i := range qs {
		qs[i] = margin + rng.Float64()*(domain-2*margin)
	}
	return qs
}

// WriteTo serializes the dataset in a line-oriented text format:
// one object per line, "lo hi" for uniform pdfs or
// "hist e0 e1 ... ek | w0 ... wk-1" for histogram pdfs.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}
	for _, o := range d.objects {
		switch p := o.PDF.(type) {
		case pdf.Uniform:
			sup := p.Support()
			if err := count(fmt.Fprintf(bw, "%g %g\n", sup.Lo, sup.Hi)); err != nil {
				return written, err
			}
		case *pdf.Histogram:
			var sb strings.Builder
			sb.WriteString("hist")
			for _, e := range p.Edges() {
				fmt.Fprintf(&sb, " %g", e)
			}
			sb.WriteString(" |")
			for i := 0; i < p.NumBins(); i++ {
				fmt.Fprintf(&sb, " %g", p.BinMass(i))
			}
			sb.WriteByte('\n')
			if err := count(bw.WriteString(sb.String())); err != nil {
				return written, err
			}
		default:
			return written, fmt.Errorf("uncertain: cannot serialize pdf type %T", p)
		}
	}
	return written, bw.Flush()
}

// Read parses a dataset in the WriteTo format.
func Read(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pdfs []pdf.PDF
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "hist" {
			sep := -1
			for i, f := range fields {
				if f == "|" {
					sep = i
					break
				}
			}
			if sep < 0 {
				return nil, fmt.Errorf("uncertain: line %d: histogram missing separator", line)
			}
			edges, err := parseFloats(fields[1:sep])
			if err != nil {
				return nil, fmt.Errorf("uncertain: line %d: %w", line, err)
			}
			weights, err := parseFloats(fields[sep+1:])
			if err != nil {
				return nil, fmt.Errorf("uncertain: line %d: %w", line, err)
			}
			h, err := pdf.NewHistogram(edges, weights)
			if err != nil {
				return nil, fmt.Errorf("uncertain: line %d: %w", line, err)
			}
			pdfs = append(pdfs, h)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("uncertain: line %d: want 'lo hi', got %q", line, text)
		}
		vals, err := parseFloats(fields)
		if err != nil {
			return nil, fmt.Errorf("uncertain: line %d: %w", line, err)
		}
		u, err := pdf.NewUniform(vals[0], vals[1])
		if err != nil {
			return nil, fmt.Errorf("uncertain: line %d: %w", line, err)
		}
		pdfs = append(pdfs, u)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewDataset(pdfs), nil
}

// WriteQueries serializes a query workload in the engine's text format: one
// query point per line.
func WriteQueries(w io.Writer, qs []float64) error {
	bw := bufio.NewWriter(w)
	for _, q := range qs {
		if _, err := fmt.Fprintf(bw, "%g\n", q); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadQueries parses a query workload: one finite float per line, with blank
// lines and '#' comments skipped — the format consumed by cpnn-query -batch
// and cpnn-bench -replay.
func ReadQueries(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var qs []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("uncertain: query line %d: parsing %q: %w", line, text, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("uncertain: query line %d: non-finite query point %q", line, text)
		}
		qs = append(qs, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return qs, nil
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", f, err)
		}
		out[i] = v
	}
	return out, nil
}
