package uncertain

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadDataset: the dataset line-format parser must never panic, and
// every input it accepts must satisfy the pdf invariants and survive a
// write/read round trip.
func FuzzReadDataset(f *testing.F) {
	f.Add("1 2\n3.5 7\n")
	f.Add("hist 0 1 2 | 0.3 0.7\n")
	f.Add("# comment\n\n10 20\n")
	f.Add("hist 0 1 2 3 | 1 2 1\n-5 -1\n")
	f.Add("hist 1 2 | 1")
	f.Add("nan inf\n")
	f.Add("1e308 1e309\n")
	f.Add("hist | \n")
	f.Add("hist 2 1 | 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is the correct outcome
		}
		// Accepted datasets must be fully valid...
		if err := ds.Validate(); err != nil {
			t.Fatalf("Read accepted a dataset that fails Validate: %v\ninput: %q", err, input)
		}
		// ...and round-trip through the writer.
		var buf bytes.Buffer
		if _, err := ds.WriteTo(&buf); err != nil {
			t.Fatalf("serializing accepted dataset: %v\ninput: %q", err, input)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-reading serialized dataset: %v\ninput: %q", err, input)
		}
		if back.Len() != ds.Len() {
			t.Fatalf("round trip changed object count %d -> %d\ninput: %q", ds.Len(), back.Len(), input)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped dataset fails Validate: %v\ninput: %q", err, input)
		}
		for i := 0; i < ds.Len(); i++ {
			a, b := ds.Object(i).Region(), back.Object(i).Region()
			if a != b {
				t.Fatalf("object %d region changed %v -> %v across round trip", i, a, b)
			}
		}
	})
}

// FuzzReadQueries: the query-workload parser must never panic and must only
// ever yield finite points.
func FuzzReadQueries(f *testing.F) {
	f.Add("1\n2.5\n-3e2\n")
	f.Add("# header\n\n42\n")
	f.Add("NaN\n")
	f.Add("+Inf\n")
	f.Add("1e999\n")
	f.Add("abc\n")
	f.Fuzz(func(t *testing.T, input string) {
		qs, err := ReadQueries(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, q := range qs {
			if q != q || q > 1e308*1.5 || q < -1e308*1.5 { // NaN or ±Inf
				t.Fatalf("ReadQueries accepted non-finite point %g at %d\ninput: %q", q, i, input)
			}
		}
		// Round trip.
		var buf bytes.Buffer
		if err := WriteQueries(&buf, qs); err != nil {
			t.Fatal(err)
		}
		back, err := ReadQueries(&buf)
		if err != nil {
			t.Fatalf("re-reading serialized queries: %v", err)
		}
		if len(back) != len(qs) {
			t.Fatalf("round trip changed query count %d -> %d", len(qs), len(back))
		}
		for i := range qs {
			if back[i] != qs[i] {
				t.Fatalf("query %d changed %g -> %g across round trip", i, qs[i], back[i])
			}
		}
	})
}
