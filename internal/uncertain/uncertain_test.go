package uncertain

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/pdf"
)

func TestNewDatasetIDs(t *testing.T) {
	ds := NewDataset([]pdf.PDF{pdf.MustUniform(0, 1), pdf.MustUniform(5, 9)})
	if ds.Len() != 2 {
		t.Fatalf("Len = %d", ds.Len())
	}
	for i := 0; i < ds.Len(); i++ {
		if ds.Object(i).ID != i {
			t.Errorf("object %d has ID %d", i, ds.Object(i).ID)
		}
	}
	if r := ds.Object(1).Region(); r.Lo != 5 || r.Hi != 9 {
		t.Errorf("Region = %v", r)
	}
	if dom := ds.Domain(); dom.Lo != 0 || dom.Hi != 9 {
		t.Errorf("Domain = %v", dom)
	}
}

func TestEmptyDatasetDomain(t *testing.T) {
	ds := NewDataset(nil)
	if ds.Len() != 0 {
		t.Error("empty dataset has objects")
	}
	if dom := ds.Domain(); dom.Lo != 0 || dom.Hi != 0 {
		t.Errorf("empty Domain = %v", dom)
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("empty dataset invalid: %v", err)
	}
}

func TestGenerateUniformDeterministic(t *testing.T) {
	opt := GenOptions{N: 200, Domain: 1000, MeanLen: 10, MinLen: 1, MaxLen: 50, Seed: 42}
	a, err := GenerateUniform(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateUniform(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 200 || b.Len() != 200 {
		t.Fatal("wrong sizes")
	}
	for i := 0; i < a.Len(); i++ {
		if a.Object(i).Region() != b.Object(i).Region() {
			t.Fatalf("object %d differs between identically-seeded runs", i)
		}
	}
	// Region lengths respect the configured bounds.
	for _, o := range a.Objects() {
		l := o.Region().Length()
		if l < opt.MinLen-1e-12 || l > opt.MaxLen+1e-12 {
			t.Fatalf("region length %g outside [%g, %g]", l, opt.MinLen, opt.MaxLen)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateUniformMeanLength(t *testing.T) {
	opt := GenOptions{N: 5000, Domain: 10000, MeanLen: 17, MinLen: 0.5, MaxLen: 120, Seed: 7}
	ds, err := GenerateUniform(opt)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, o := range ds.Objects() {
		sum += o.Region().Length()
	}
	mean := sum / float64(ds.Len())
	// Truncation at MaxLen pulls the mean slightly below MeanLen.
	if mean < opt.MeanLen*0.7 || mean > opt.MeanLen*1.15 {
		t.Errorf("mean region length %g far from target %g", mean, opt.MeanLen)
	}
}

func TestGenerateOptionsValidation(t *testing.T) {
	bad := []GenOptions{
		{N: -1, Domain: 10, MeanLen: 1, MinLen: 0.5, MaxLen: 2},
		{N: 10, Domain: 0, MeanLen: 1, MinLen: 0.5, MaxLen: 2},
		{N: 10, Domain: 10, MeanLen: 1, MinLen: 0, MaxLen: 2},
		{N: 10, Domain: 10, MeanLen: 5, MinLen: 1, MaxLen: 2},
		{N: 10, Domain: 10, MeanLen: 0.2, MinLen: 1, MaxLen: 2},
	}
	for i, opt := range bad {
		if _, err := GenerateUniform(opt); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestGenerateGaussian(t *testing.T) {
	opt := GenOptions{N: 50, Domain: 1000, MeanLen: 20, MinLen: 2, MaxLen: 80, Seed: 3}
	ds, err := GenerateGaussian(opt, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ds.Objects() {
		h, ok := o.PDF.(*pdf.Histogram)
		if !ok {
			t.Fatalf("object %d pdf is %T, want *pdf.Histogram", o.ID, o.PDF)
		}
		if h.NumBins() != 300 {
			t.Fatalf("object %d has %d bars, want 300", o.ID, h.NumBins())
		}
		// Gaussian mass concentrates centrally: the middle third must hold
		// the majority of the mass.
		sup := h.Support()
		third := sup.Length() / 3
		mid := h.CDF(sup.Lo+2*third) - h.CDF(sup.Lo+third)
		if mid < 0.6 {
			t.Fatalf("object %d: central mass %g too small for a Gaussian", o.ID, mid)
		}
	}
	if _, err := GenerateGaussian(opt, 0); err == nil {
		t.Error("zero bars accepted")
	}
}

func TestGenerateHistogram(t *testing.T) {
	opt := GenOptions{N: 40, Domain: 500, MeanLen: 10, MinLen: 1, MaxLen: 40, Seed: 9}
	ds, err := GenerateHistogram(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, o := range ds.Objects() {
		h := o.PDF.(*pdf.Histogram)
		if h.NumBins() < 2 || h.NumBins() > 8 {
			t.Fatalf("bars = %d outside [2, 8]", h.NumBins())
		}
		// All bins must be strictly positive (the paper's assumption).
		for b := 0; b < h.NumBins(); b++ {
			if h.BinMass(b) <= 0 {
				t.Fatalf("object %d has empty bin %d", o.ID, b)
			}
		}
	}
	if _, err := GenerateHistogram(opt, 1); err == nil {
		t.Error("maxBars=1 accepted")
	}
}

func TestLongBeachOptionsShape(t *testing.T) {
	opt := LongBeachOptions(1)
	if opt.N != 53144 || opt.Domain != 10000 {
		t.Errorf("LongBeachOptions = %+v; want N=53144, Domain=10000 per §V-A", opt)
	}
}

func TestQueryWorkload(t *testing.T) {
	qs := QueryWorkload(100, 10000, 5)
	if len(qs) != 100 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, q := range qs {
		if q < 500 || q > 9500 {
			t.Errorf("query %g outside margin-protected domain", q)
		}
	}
	qs2 := QueryWorkload(100, 10000, 5)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestSerializationRoundTripUniform(t *testing.T) {
	ds := NewDataset([]pdf.PDF{
		pdf.MustUniform(0, 4.5),
		pdf.MustUniform(100, 101),
	})
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("Len = %d", back.Len())
	}
	for i := 0; i < 2; i++ {
		if back.Object(i).Region() != ds.Object(i).Region() {
			t.Errorf("object %d region mismatch", i)
		}
	}
}

func TestSerializationRoundTripHistogram(t *testing.T) {
	h := pdf.MustHistogram([]float64{0, 1, 3, 7}, []float64{1, 2, 1})
	ds := NewDataset([]pdf.PDF{h})
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Object(0).PDF.(*pdf.Histogram)
	for _, x := range []float64{0.5, 1, 2, 5, 7} {
		if math.Abs(got.CDF(x)-h.CDF(x)) > 1e-9 {
			t.Errorf("CDF(%g) = %g, want %g", x, got.CDF(x), h.CDF(x))
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1\n",            // one field
		"1 2 3\n",        // three fields
		"a b\n",          // non-numeric
		"5 2\n",          // inverted
		"hist 0 1 2\n",   // histogram without separator
		"hist 0 x | 1\n", // bad edge
		"hist 0 1 | z\n", // bad weight
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
	// Comments and blank lines are skipped.
	ds, err := Read(strings.NewReader("# comment\n\n1 2\n"))
	if err != nil || ds.Len() != 1 {
		t.Errorf("comment handling broken: %v, %d objects", err, ds.Len())
	}
}

func TestWriteToUnsupportedPDF(t *testing.T) {
	g, err := pdf.PaperGaussian(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset([]pdf.PDF{g})
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err == nil {
		t.Error("serializing analytic Gaussian should fail (discretize first)")
	}
}

func TestQueryWorkloadRoundTrip(t *testing.T) {
	qs := QueryWorkload(100, 10000, 3)
	var buf bytes.Buffer
	if err := WriteQueries(&buf, qs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadQueries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(qs) {
		t.Fatalf("round trip changed count %d -> %d", len(qs), len(back))
	}
	for i := range qs {
		if back[i] != qs[i] {
			t.Fatalf("query %d changed %v -> %v", i, qs[i], back[i])
		}
	}
}

func TestReadQueriesRejectsBadInput(t *testing.T) {
	for _, bad := range []string{"NaN\n", "+Inf\n", "-Inf\n", "1e999\n", "12 34\n", "abc\n"} {
		if _, err := ReadQueries(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadQueries accepted %q", bad)
		}
	}
	qs, err := ReadQueries(strings.NewReader("# comment\n\n1.5\n  2.5  \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] != 1.5 || qs[1] != 2.5 {
		t.Fatalf("got %v, want [1.5 2.5]", qs)
	}
}
