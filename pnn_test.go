package pnn_test

import (
	"math"
	"testing"

	pnn "repro"
)

func TestFacadeQuickstart(t *testing.T) {
	ds := pnn.NewDataset([]pnn.PDF{
		pnn.MustUniform(8, 18),
		pnn.MustUniform(9, 13),
		pnn.MustUniform(2, 30),
		pnn.MustUniform(11, 17),
	})
	eng, err := pnn.New(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.CPNN(12, pnn.Constraint{P: 0.3, Delta: 0.01}, pnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	for _, a := range res.Answers {
		if a.Status != pnn.StatusSatisfy {
			t.Errorf("answer %d status %v", a.ID, a.Status)
		}
		if a.Bounds.U < 0.3 {
			t.Errorf("answer %d upper bound %g below threshold", a.ID, a.Bounds.U)
		}
	}
}

func TestFacadeStrategiesAndVerifiers(t *testing.T) {
	opt := pnn.GenOptions{N: 300, Domain: 800, MeanLen: 12, MinLen: 1, MaxLen: 50, Seed: 4}
	ds, err := pnn.GenerateUniform(opt)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pnn.New(ds)
	if err != nil {
		t.Fatal(err)
	}
	c := pnn.Constraint{P: 0.3, Delta: 0}
	q := 400.0
	vr, err := eng.CPNN(q, c, pnn.Options{Strategy: pnn.StrategyVR, Verifiers: pnn.DefaultVerifiers()})
	if err != nil {
		t.Fatal(err)
	}
	basic, err := eng.CPNN(q, c, pnn.Options{Strategy: pnn.StrategyBasic, BasicSteps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	a, b := vr.AnswerIDs(), basic.AnswerIDs()
	if len(a) != len(b) {
		t.Fatalf("VR %v vs Basic %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("VR %v vs Basic %v", a, b)
		}
	}
}

func TestFacadePDFConstructors(t *testing.T) {
	if _, err := pnn.NewUniform(5, 5); err == nil {
		t.Error("degenerate uniform accepted")
	}
	g, err := pnn.PaperGaussian(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Mean(); math.Abs(got-3) > 1e-9 {
		t.Errorf("PaperGaussian mean = %g", got)
	}
	if _, err := pnn.NewGaussian(0, 6, 3, -1); err == nil {
		t.Error("negative sigma accepted")
	}
	h, err := pnn.NewHistogram([]float64{0, 1, 2}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.CDF(1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("histogram CDF = %g", got)
	}
}

func TestFacadeWorkloadHelpers(t *testing.T) {
	lb := pnn.LongBeachOptions(1)
	if lb.N != 53144 {
		t.Errorf("LongBeachOptions N = %d", lb.N)
	}
	qs := pnn.QueryWorkload(10, 100, 2)
	if len(qs) != 10 {
		t.Errorf("workload size %d", len(qs))
	}
}

func TestFacade2D(t *testing.T) {
	eng, err := pnn.New2D([]pnn.Object2D{
		{ID: 0, Region: pnn.Circle{Center: pnn.Point{X: 3, Y: 0}, Radius: 2}},
		{ID: 1, Region: pnn.Circle{Center: pnn.Point{X: 0, Y: 4}, Radius: 2}},
		{ID: 2, Region: pnn.Circle{Center: pnn.Point{X: 50, Y: 50}, Radius: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.CPNN(pnn.Point{X: 0, Y: 0}, pnn.Constraint{P: 0.3, Delta: 0.02},
		pnn.Options2D{Bins: 96})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates != 2 {
		t.Errorf("candidates = %d, want 2 (far disk pruned)", res.Stats.Candidates)
	}
	// The disk nearer to the origin must be the dominant answer.
	found := false
	for _, a := range res.Answers {
		if a.ID == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("nearest disk missing from answers: %v", res.Answers)
	}
}
